//! The grid worker process: one shard executor of the multi-process grid.
//!
//! A worker is the current binary re-exec'd as `utility_risk worker`
//! (hidden subcommand). It speaks the [`crate::ipc`] frame protocol:
//! [`ToWorker::Hello`] configures the run, then the supervisor streams
//! [`ToWorker::RunCell`] assignments one at a time and the worker answers
//! each with `CellOk` or a typed `CellErr`. A dedicated thread emits
//! [`FromWorker::Heartbeat`] beacons at a quarter of the configured
//! interval, independent of the (possibly long-running) cell on the main
//! thread — so a slow cell is not silence, only a dead process is.
//!
//! Results are belt-and-braces durable: each completed cell is appended to
//! the worker's *shard journal* (`<primary>.shard<id>`) before the
//! `CellOk` frame is sent. If the worker (or the pipe) dies between the
//! append and the supervisor's read, `Journal::merge_shards` adopts the
//! record on the next resume instead of re-simulating the cell.
//!
//! The `CCS_KILL_WORKER` drill (`"worker:after_cells"`,
//! [`ccs_chaos::WorkerKillPlan`]) makes the matching worker
//! `std::process::abort()` upon its next assignment — the std-only
//! stand-in for SIGKILL that the kill-recovery tests and the CI drill use.

use crate::grid::{simulate_cell, CellDrill, ExperimentConfig, WorkloadCache};
use crate::ipc::{read_frame, write_frame, FromWorker, ToWorker};
use crate::journal::{CellRecord, Journal};
use crate::scenario::Scenario;
use ccs_chaos::WorkerKillPlan;
use ccs_simsvc::{RunBudget, RunConfig};
use ccs_workload::apply_scenario;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Exit code for a protocol violation (unreadable or out-of-order frame):
/// distinct from 0 (clean shutdown) and from abort/panic codes, so the
/// supervisor's crash classification stays meaningful.
pub const PROTOCOL_EXIT: i32 = 3;

/// Sends one frame to the supervisor through the shared stdout lock.
/// Exits the process cleanly if the pipe is gone — a worker without a
/// supervisor has nothing left to do.
fn send(out: &Mutex<std::io::Stdout>, msg: &FromWorker) {
    let mut w = out.lock().unwrap();
    if write_frame(&mut *w, msg).is_err() {
        std::process::exit(0);
    }
    let _ = w.flush();
}

/// Runs the worker protocol loop until shutdown. Never returns.
pub fn worker_main() -> ! {
    let mut stdin = std::io::stdin().lock();
    let out = Arc::new(Mutex::new(std::io::stdout()));

    let hello = match read_frame::<ToWorker>(&mut stdin) {
        Ok(Some(h @ ToWorker::Hello { .. })) => h,
        Ok(None) => std::process::exit(0),
        other => {
            eprintln!("worker: expected Hello frame, got {other:?}");
            std::process::exit(PROTOCOL_EXIT);
        }
    };
    let ToWorker::Hello {
        worker_id,
        seed,
        nodes,
        trace,
        heartbeat_ms,
        cell_wall_budget,
        cell_event_budget,
        fail_cell,
        stall_cell,
        shard_journal,
    } = hello
    else {
        unreachable!("matched Hello above");
    };

    // Supervised runs never carry ensembles (the supervisor path asserts
    // `replicas <= 1`), so workers are pinned to one replica per cell.
    let cfg = ExperimentConfig {
        nodes,
        trace,
        seed,
        threads: 1,
        replicas: 1,
    };
    let run_budget = RunBudget {
        max_wall_secs: cell_wall_budget,
        max_events: cell_event_budget,
    };
    let shard = shard_journal.map(|p| {
        Journal::open(Path::new(&p))
            .unwrap_or_else(|e| panic!("worker {worker_id}: cannot open shard journal {p}: {e}"))
    });
    let kill_plan = WorkerKillPlan::from_env();

    let cells_done = Arc::new(AtomicU64::new(0));
    {
        // Heartbeats ride a dedicated thread so a long cell on the main
        // thread never reads as silence. The thread dies with the process;
        // if the pipe breaks first, `send` exits for us.
        let out = Arc::clone(&out);
        let cells_done = Arc::clone(&cells_done);
        let interval = std::time::Duration::from_millis((heartbeat_ms / 4).max(10));
        std::thread::spawn(move || loop {
            send(
                &out,
                &FromWorker::Heartbeat {
                    worker_id,
                    cells_done: cells_done.load(Ordering::Relaxed),
                },
            );
            std::thread::sleep(interval);
        });
    }
    send(&out, &FromWorker::Ready { worker_id });

    // Base jobs are synthesised once, lazily; scenario workloads are
    // memoised across cells exactly like the in-process thread pool.
    let mut base: Option<Arc<Vec<ccs_workload::BaseJob>>> = None;
    let cache = WorkloadCache::new();

    loop {
        let msg = match read_frame::<ToWorker>(&mut stdin) {
            Ok(Some(m)) => m,
            Ok(None) => std::process::exit(0),
            Err(e) => {
                eprintln!("worker {worker_id}: bad frame from supervisor: {e}");
                std::process::exit(PROTOCOL_EXIT);
            }
        };
        let cell = match msg {
            ToWorker::RunCell { cell } => cell,
            ToWorker::Shutdown => std::process::exit(0),
            ToWorker::Hello { .. } => {
                eprintln!("worker {worker_id}: unexpected second Hello");
                std::process::exit(PROTOCOL_EXIT);
            }
        };

        if let Some(plan) = kill_plan {
            if plan.should_kill(worker_id, cells_done.load(Ordering::Relaxed)) {
                // The kill drill: die abruptly mid-shard, no cleanup, no
                // goodbye frame — the supervisor must cope.
                std::process::abort();
            }
        }

        let scenario = Scenario::ALL[cell.scenario_idx];
        let value = scenario.values()[cell.value_idx];
        let fault = scenario.fault(value, cfg.seed);
        let transform = scenario.transform(cell.set, value);
        let run_cfg = RunConfig {
            nodes: cfg.nodes,
            econ: cell.econ,
        };
        let this_cell = format!(
            "{}:{}:{}",
            cell.scenario_idx,
            cell.value_idx,
            cell.policy.name()
        );
        let drill = CellDrill {
            fail: fail_cell.as_deref() == Some(this_cell.as_str()),
            stall: stall_cell.as_deref() == Some(this_cell.as_str()),
        };
        let base_slot = &mut base;
        let sim = simulate_cell(
            cell.policy,
            &run_cfg,
            fault.as_ref(),
            run_budget,
            drill,
            &this_cell,
            || {
                let base = base_slot.get_or_insert_with(|| Arc::new(cfg.trace.generate(cfg.seed)));
                let base = Arc::clone(base);
                cache.get_or_generate(format!("{transform:?}"), move || {
                    let _phase = ccs_telemetry::profile::enter("workload_gen");
                    apply_scenario(&base, &transform, cfg.seed)
                })
            },
        );
        cells_done.fetch_add(1, Ordering::Relaxed);

        match sim.outcome {
            Ok((objectives, events)) => {
                if let Some(j) = shard.as_ref().filter(|_| !drill.stall) {
                    j.append(&CellRecord {
                        key: cell.key.clone(),
                        scenario_idx: cell.scenario_idx,
                        value_idx: cell.value_idx,
                        policy: cell.policy.name().to_string(),
                        objectives,
                        sigma: [0.0; 4],
                        secs: sim.secs,
                        events,
                        worker: worker_id,
                    });
                }
                send(
                    &out,
                    &FromWorker::CellOk {
                        cell,
                        objectives,
                        secs: sim.secs,
                        events,
                        cost: sim.cost,
                        profile: sim.profile,
                    },
                );
            }
            Err((kind, message)) => {
                send(
                    &out,
                    &FromWorker::CellErr {
                        cell,
                        kind,
                        message,
                    },
                );
            }
        }
    }
}
