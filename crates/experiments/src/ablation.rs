//! Ablation studies of the design choices called out in DESIGN.md.
//!
//! The paper makes several structural claims in passing; these experiments
//! isolate each one:
//!
//! - **Admission control** (paper Section 5.2: "we find that these policies
//!   without job admission control perform much worse, especially when
//!   deadlines of jobs are short") — [`admission_control_ablation`].
//! - **EASY backfilling** — [`backfilling_ablation`] degrades the
//!   backfilling policies to plain priority scheduling.
//! - **Deadline escalation** in the proportional-share engine — the cascade
//!   mechanism by which under-estimates hurt the Libra family
//!   ([`escalation_ablation`]).
//! - **Libra+$ β** (the utilization-pricing weight; paper fixes β = 0.3) —
//!   [`beta_sweep`] traces the SLA-vs-profitability trade-off.
//! - **FirstReward slack threshold** (paper Section 5.2: "Setting the
//!   correct slack threshold is not trivial as the ideal slack threshold
//!   changes depending on the workload") — [`slack_threshold_sweep`]
//!   reproduces that sensitivity across workload levels.

use crate::scenario::{baseline, EstimateSet};
use ccs_cluster::WeightMode;
use ccs_economy::{EconomicModel, LibraDollarParams};
use ccs_policies::NodeSelection;
use ccs_policies::{
    backfill::BackfillOptions, BackfillPolicy, ConservativeBf, FirstRewardParams,
    FirstRewardPolicy, LibraPolicy, LibraVariant, Policy, PriorityOrder,
};
use ccs_simsvc::{simulate_with, RunConfig, RunMetrics};
use ccs_workload::{apply_scenario, BaseJob, Job, ScenarioTransform};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One ablation variant's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label, e.g. `"SJF-BF (no admission control)"`.
    pub label: String,
    /// Aggregate run metrics of the variant.
    pub metrics: RunMetrics,
}

/// A complete ablation study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ablation {
    /// Study title.
    pub title: String,
    /// What the study demonstrates.
    pub claim: String,
    /// One row per variant.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Renders the study as an aligned text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== {} ===", self.title);
        let _ = writeln!(s, "{}", self.claim);
        let _ = writeln!(
            s,
            "{:<42} {:>9} {:>8} {:>8} {:>11} {:>9}",
            "variant", "accepted", "SLA %", "wait (s)", "reliab. %", "profit %"
        );
        for r in &self.rows {
            let m = &r.metrics;
            let _ = writeln!(
                s,
                "{:<42} {:>9} {:>8.1} {:>8.0} {:>11.1} {:>9.1}",
                r.label,
                m.accepted,
                m.sla_pct(),
                m.wait(),
                m.reliability_pct(),
                m.profitability_pct()
            );
        }
        s
    }
}

fn jobs_for(base: &[BaseJob], t: &ScenarioTransform, seed: u64) -> Vec<Job> {
    apply_scenario(base, t, seed)
}

/// Admission control on/off for the three backfilling policies, at the
/// default deadlines and at short deadlines (low-value mean 1).
pub fn admission_control_ablation(base: &[BaseJob], seed: u64, nodes: u32) -> Ablation {
    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::CommodityMarket,
    };
    let mut rows = Vec::new();
    for (deadline_label, low_mean) in [("default deadlines", 4.0), ("short deadlines", 1.0)] {
        let mut t = baseline(EstimateSet::A);
        t.qos.deadline.low_mean = low_mean;
        let jobs = jobs_for(base, &t, seed);
        for order in [PriorityOrder::Fcfs, PriorityOrder::Sjf, PriorityOrder::Edf] {
            for (ac_label, admission_control) in [("with AC", true), ("no AC", false)] {
                let policy = BackfillPolicy::with_options(
                    order,
                    cfg.econ,
                    nodes,
                    BackfillOptions {
                        backfilling: true,
                        admission_control,
                    },
                );
                let name = policy.name();
                let res = simulate_with(&jobs, Box::new(policy), &cfg);
                rows.push(AblationRow {
                    label: format!("{name} ({ac_label}, {deadline_label})"),
                    metrics: res.metrics,
                });
            }
        }
    }
    Ablation {
        title: "Generous admission control".into(),
        claim: "Paper Section 5.2: policies without job admission control perform \
                much worse, especially when deadlines of jobs are short."
            .into(),
        rows,
    }
}

/// EASY backfilling on/off for the three backfilling policies.
pub fn backfilling_ablation(base: &[BaseJob], seed: u64, nodes: u32) -> Ablation {
    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::CommodityMarket,
    };
    let jobs = jobs_for(base, &baseline(EstimateSet::A), seed);
    let mut rows = Vec::new();
    for order in [PriorityOrder::Fcfs, PriorityOrder::Sjf, PriorityOrder::Edf] {
        for (label, backfilling) in [("EASY", true), ("no backfill", false)] {
            let policy = BackfillPolicy::with_options(
                order,
                cfg.econ,
                nodes,
                BackfillOptions {
                    backfilling,
                    admission_control: true,
                },
            );
            let name = policy.name();
            let res = simulate_with(&jobs, Box::new(policy), &cfg);
            rows.push(AblationRow {
                label: format!("{name} ({label})"),
                metrics: res.metrics,
            });
        }
    }
    Ablation {
        title: "EASY backfilling".into(),
        claim: "Backfilling raises utilization and fulfilled SLAs over plain \
                priority scheduling with head-of-line blocking."
            .into(),
        rows,
    }
}

/// Deadline escalation on/off for the Libra family under trace estimates.
pub fn escalation_ablation(base: &[BaseJob], seed: u64, nodes: u32) -> Ablation {
    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::BidBased,
    };
    let jobs = jobs_for(base, &baseline(EstimateSet::B), seed);
    let mut rows = Vec::new();
    for (label, escalation) in [("escalation on", true), ("escalation off", false)] {
        for variant in [LibraVariant::Plain, LibraVariant::RiskD] {
            let policy =
                LibraPolicy::with_engine(variant, cfg.econ, nodes, WeightMode::Dynamic, escalation);
            let name = policy.name();
            let res = simulate_with(&jobs, Box::new(policy), &cfg);
            rows.push(AblationRow {
                label: format!("{name} ({label})"),
                metrics: res.metrics,
            });
        }
    }
    Ablation {
        title: "Proportional-share deadline escalation (Set B)".into(),
        claim: "The cascade by which overdue under-estimated jobs squeeze \
                co-residents; without it the Libra family's Set B reliability \
                loss shrinks to the self-inflicted misses."
            .into(),
        rows,
    }
}

/// Sweeps Libra+$'s utilization-pricing weight β.
pub fn beta_sweep(base: &[BaseJob], seed: u64, nodes: u32, betas: &[f64]) -> Ablation {
    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::CommodityMarket,
    };
    let jobs = jobs_for(base, &baseline(EstimateSet::A), seed);
    let rows = betas
        .iter()
        .map(|&beta| {
            let policy = LibraPolicy::new(LibraVariant::Dollar, cfg.econ, nodes)
                .with_dollar_params(LibraDollarParams {
                    beta,
                    ..Default::default()
                });
            let res = simulate_with(&jobs, Box::new(policy), &cfg);
            AblationRow {
                label: format!("Libra+$ β = {beta}"),
                metrics: res.metrics,
            }
        })
        .collect();
    Ablation {
        title: "Libra+$ pricing weight β".into(),
        claim: "Raising β prices out more jobs (SLA falls) while revenue per \
                accepted budget rises — the paper fixes β = 0.3."
            .into(),
        rows,
    }
}

/// Sweeps FirstReward's slack threshold across workload levels.
pub fn slack_threshold_sweep(
    base: &[BaseJob],
    seed: u64,
    nodes: u32,
    thresholds: &[f64],
) -> Ablation {
    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::BidBased,
    };
    let mut rows = Vec::new();
    for (load_label, factor) in [("heavy load", 0.1), ("light load", 1.0)] {
        let mut t = baseline(EstimateSet::B);
        t.arrival_delay_factor = factor;
        let jobs = jobs_for(base, &t, seed);
        for &threshold in thresholds {
            let policy = FirstRewardPolicy::with_params(
                nodes,
                FirstRewardParams {
                    slack_threshold: threshold,
                    ..Default::default()
                },
            );
            let res = simulate_with(&jobs, Box::new(policy), &cfg);
            rows.push(AblationRow {
                label: format!("FirstReward slack ≥ {threshold} ({load_label})"),
                metrics: res.metrics,
            });
        }
    }
    Ablation {
        title: "FirstReward slack threshold".into(),
        claim: "Paper Section 5.2: the ideal slack threshold changes with the \
                workload — a threshold tuned for one load is wrong for another."
            .into(),
        rows,
    }
}

/// EASY vs conservative backfilling (Mu'alem & Feitelson, the paper's
/// reference [19]) under accurate and trace estimates.
pub fn easy_vs_conservative(base: &[BaseJob], seed: u64, nodes: u32) -> Ablation {
    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::CommodityMarket,
    };
    let mut rows = Vec::new();
    for (set, set_label) in [(EstimateSet::A, "Set A"), (EstimateSet::B, "Set B")] {
        let jobs = jobs_for(base, &baseline(set), seed);
        let easy = BackfillPolicy::new(PriorityOrder::Fcfs, cfg.econ, nodes);
        rows.push(AblationRow {
            label: format!("FCFS-BF / EASY ({set_label})"),
            metrics: simulate_with(&jobs, Box::new(easy), &cfg).metrics,
        });
        let cons = ConservativeBf::new(cfg.econ, nodes);
        rows.push(AblationRow {
            label: format!("Cons-BF / conservative ({set_label})"),
            metrics: simulate_with(&jobs, Box::new(cons), &cfg).metrics,
        });
    }
    Ablation {
        title: "EASY vs conservative backfilling".into(),
        claim: "Conservative backfilling reserves a start for every queued \
                job (predictability) at some cost in packing; EASY protects \
                only the queue head (utilization)."
            .into(),
        rows,
    }
}

/// Computation-at-Risk comparison (the related-work method of paper refs
/// [15][16]): per-policy CaR summaries of makespan and slowdown tails,
/// computed on the same runs the risk analysis grades.
pub fn car_comparison(base: &[BaseJob], seed: u64, nodes: u32) -> String {
    use ccs_risk::car::{analyze as car_analyze, CarMetric};
    use ccs_simsvc::samples::{response_times, slowdowns};

    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::BidBased,
    };
    let jobs = jobs_for(base, &baseline(EstimateSet::B), seed);
    let mut s =
        String::from("=== Computation-at-Risk (Kleban & Clearwater) on bid-based Set B runs ===\n");
    for kind in ccs_policies::PolicyKind::BID_BASED {
        let res = ccs_simsvc::simulate(&jobs, kind, &cfg);
        let rt = response_times(&jobs, &res.records);
        let sd = slowdowns(&jobs, &res.records);
        if rt.is_empty() {
            let _ = writeln!(s, "{:<12} no completed jobs", kind.name());
            continue;
        }
        let _ = writeln!(
            s,
            "{:<12} {}",
            kind.name(),
            car_analyze(CarMetric::Makespan, &rt)
        );
        let _ = writeln!(s, "{:<12} {}", "", car_analyze(CarMetric::Slowdown, &sd));
    }
    s
}

/// Best-fit vs worst-fit node selection for Libra (the placement strategies
/// the original Libra paper compares), plus a heterogeneous cluster with the
/// same aggregate capacity as the homogeneous baseline.
pub fn placement_ablation(base: &[BaseJob], seed: u64, nodes: u32) -> Ablation {
    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::BidBased,
    };
    let jobs = jobs_for(base, &baseline(EstimateSet::A), seed);
    let mut rows = Vec::new();
    for (label, selection) in [
        ("best fit", NodeSelection::BestFit),
        ("worst fit", NodeSelection::WorstFit),
    ] {
        let policy =
            LibraPolicy::new(LibraVariant::Plain, cfg.econ, nodes).with_selection(selection);
        rows.push(AblationRow {
            label: format!("Libra ({label}, homogeneous)"),
            metrics: simulate_with(&jobs, Box::new(policy), &cfg).metrics,
        });
    }
    // Heterogeneous: half the nodes at 0.5x, half at 1.5x (same total).
    let mut ratings = vec![0.5; nodes as usize / 2];
    ratings.extend(vec![1.5; nodes as usize - nodes as usize / 2]);
    let policy = LibraPolicy::with_ratings(LibraVariant::Plain, cfg.econ, ratings);
    rows.push(AblationRow {
        label: "Libra (best fit, heterogeneous 0.5x/1.5x)".into(),
        metrics: simulate_with(&jobs, Box::new(policy), &cfg).metrics,
    });
    Ablation {
        title: "Libra node selection and cluster heterogeneity".into(),
        claim: "Best fit saturates nodes, preserving whole free nodes for \
                demanding jobs; worst fit fragments shares. A heterogeneous \
                cluster of equal aggregate capacity shifts tight-deadline \
                jobs onto the fast nodes."
            .into(),
        rows,
    }
}

/// Flat vs time-of-use commodity pricing on a diurnal (office-hours)
/// workload — the "prices can be flat or variable" option of paper
/// Section 5.1 that the evaluated policies leave unexplored.
pub fn pricing_schedule_ablation(base: &[BaseJob], seed: u64, nodes: u32) -> Ablation {
    use ccs_economy::PriceSchedule;
    use ccs_workload::{apply_diurnal, DiurnalProfile};

    let cfg = RunConfig {
        nodes,
        econ: EconomicModel::CommodityMarket,
    };
    let diurnal = apply_diurnal(base, &DiurnalProfile::office_hours(6.0), seed);
    let jobs = jobs_for(&diurnal, &baseline(EstimateSet::A), seed);
    let mut rows = Vec::new();
    for (label, schedule) in [
        ("flat $1", PriceSchedule::Flat(1.0)),
        (
            "TOU $2 peak / $0.5 off-peak",
            PriceSchedule::PeakOffPeak {
                peak: 2.0,
                off_peak: 0.5,
                peak_start_hour: 9,
                peak_end_hour: 17,
            },
        ),
    ] {
        let policy =
            BackfillPolicy::new(PriorityOrder::Sjf, cfg.econ, nodes).with_schedule(schedule);
        let res = simulate_with(&jobs, Box::new(policy), &cfg);
        rows.push(AblationRow {
            label: format!("SJF-BF ({label})"),
            metrics: res.metrics,
        });
    }
    Ablation {
        title: "Flat vs variable (time-of-use) commodity pricing".into(),
        claim: "Variable pricing extracts more revenue from a diurnal \
                workload whose arrivals concentrate in the peak window, at \
                the cost of pricing some peak jobs out of their budgets."
            .into(),
        rows,
    }
}

/// Runs every ablation at the given scale.
pub fn run_all(base: &[BaseJob], seed: u64, nodes: u32) -> Vec<Ablation> {
    vec![
        admission_control_ablation(base, seed, nodes),
        backfilling_ablation(base, seed, nodes),
        escalation_ablation(base, seed, nodes),
        beta_sweep(base, seed, nodes, &[0.0, 0.1, 0.3, 0.6, 1.0]),
        slack_threshold_sweep(base, seed, nodes, &[-1e6, 0.0, 25.0, 1e4, 1e6]),
        easy_vs_conservative(base, seed, nodes),
        pricing_schedule_ablation(base, seed, nodes),
        placement_ablation(base, seed, nodes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_workload::SdscSp2Model;

    fn base() -> Vec<BaseJob> {
        SdscSp2Model {
            jobs: 250,
            ..Default::default()
        }
        .generate(42)
    }

    #[test]
    fn admission_control_matters_most_with_short_deadlines() {
        let a = admission_control_ablation(&base(), 42, 128);
        assert_eq!(a.rows.len(), 12);
        // Compare SJF with/without AC at short deadlines: reliability must
        // collapse without admission control.
        let find = |label: &str| {
            a.rows
                .iter()
                .find(|r| r.label.contains(label))
                .unwrap_or_else(|| panic!("{label} missing"))
                .metrics
        };
        let with_ac = find("SJF-BF (with AC, short deadlines)");
        let without = find("SJF-BF (no AC, short deadlines)");
        assert!(
            without.reliability_pct() < with_ac.reliability_pct() - 10.0,
            "no-AC reliability {} should collapse vs {}",
            without.reliability_pct(),
            with_ac.reliability_pct()
        );
    }

    #[test]
    fn backfilling_helps_fulfilment() {
        let a = backfilling_ablation(&base(), 42, 128);
        let easy: u32 = a
            .rows
            .iter()
            .filter(|r| r.label.contains("EASY"))
            .map(|r| r.metrics.fulfilled)
            .sum();
        let plain: u32 = a
            .rows
            .iter()
            .filter(|r| r.label.contains("no backfill"))
            .map(|r| r.metrics.fulfilled)
            .sum();
        assert!(easy >= plain, "EASY {easy} vs plain {plain}");
    }

    #[test]
    fn beta_zero_is_cheapest_and_most_accepting() {
        let a = beta_sweep(&base(), 42, 128, &[0.0, 1.0]);
        assert!(a.rows[0].metrics.accepted >= a.rows[1].metrics.accepted);
    }

    #[test]
    fn slack_threshold_extremes_bracket_acceptance() {
        let b = base();
        let a = slack_threshold_sweep(&b, 42, 128, &[-1e9, 1e9]);
        // Threshold -inf accepts everything feasible; +inf accepts nothing.
        let lenient = &a.rows[0].metrics;
        let strict = &a.rows[1].metrics;
        assert!(lenient.accepted > 0);
        assert_eq!(strict.accepted, 0);
    }

    #[test]
    fn renders_as_table() {
        let a = backfilling_ablation(&base(), 42, 64);
        let text = a.render();
        assert!(text.contains("EASY backfilling"));
        assert!(text.lines().count() >= 8);
    }
}
