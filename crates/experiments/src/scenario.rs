//! The experiment scenarios: the twelve of paper Table VI plus a
//! failure-rate extension.
//!
//! Each scenario sweeps one experimental parameter across six values while
//! everything else stays at its default: job mix (% high-urgency), workload
//! (arrival-delay factor), runtime-estimate inaccuracy, and — for each of
//! the deadline, budget, and penalty attributes — bias, high:low ratio, and
//! low-value mean. The thirteenth scenario, [`Scenario::FailureRate`],
//! leaves the workload at its defaults and instead injects node failures at
//! increasing per-node rates (see [`Scenario::fault`]); its zero-rate point
//! is the exact fault-free baseline.
//!
//! Two experiment sets differ only in the *default* estimate inaccuracy:
//! Set A assumes accurate estimates (0 %), Set B the trace's own estimates
//! (100 %).

use ccs_simsvc::FaultConfig;
use ccs_workload::{QosConfig, ScenarioTransform};
use serde::{Deserialize, Serialize};

/// Experiment set (paper Section 5.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum EstimateSet {
    /// Accurate runtime estimates (0 % inaccuracy).
    A,
    /// Actual (trace) runtime estimates (100 % inaccuracy).
    B,
}

impl EstimateSet {
    /// Both sets, in paper order.
    pub const ALL: [EstimateSet; 2] = [EstimateSet::A, EstimateSet::B];

    /// The set's default inaccuracy percentage.
    pub fn default_inaccuracy(self) -> f64 {
        match self {
            EstimateSet::A => 0.0,
            EstimateSet::B => 100.0,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EstimateSet::A => "Set A",
            EstimateSet::B => "Set B",
        }
    }
}

impl std::fmt::Display for EstimateSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which QoS attribute a bias/ratio/mean scenario varies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum QosAttr {
    /// The deadline factor.
    Deadline,
    /// The budget factor.
    Budget,
    /// The penalty-rate factor.
    Penalty,
}

/// One of the experiment scenarios (paper Table VI rows plus the
/// failure-rate extension).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum Scenario {
    /// Varying percentage of high-urgency jobs.
    JobMix,
    /// Varying arrival-delay factor (workload level).
    Workload,
    /// Varying percentage of runtime-estimate inaccuracy.
    Inaccuracy,
    /// Varying bias of one QoS attribute.
    Bias(QosAttr),
    /// Varying high:low ratio of one QoS attribute.
    Ratio(QosAttr),
    /// Varying low-value mean of one QoS attribute.
    LowMean(QosAttr),
    /// Varying per-node failure rate (failures per node-week) with
    /// exponential repairs — the fault-injection extension. The workload
    /// stays at the set's defaults; only the cluster's weather changes.
    FailureRate,
}

impl Scenario {
    /// All scenarios, in a fixed order (plot point order): the paper's
    /// twelve followed by the failure-rate extension.
    pub const ALL: [Scenario; 13] = [
        Scenario::JobMix,
        Scenario::Workload,
        Scenario::Inaccuracy,
        Scenario::Bias(QosAttr::Deadline),
        Scenario::Bias(QosAttr::Budget),
        Scenario::Bias(QosAttr::Penalty),
        Scenario::Ratio(QosAttr::Deadline),
        Scenario::Ratio(QosAttr::Budget),
        Scenario::Ratio(QosAttr::Penalty),
        Scenario::LowMean(QosAttr::Deadline),
        Scenario::LowMean(QosAttr::Budget),
        Scenario::LowMean(QosAttr::Penalty),
        Scenario::FailureRate,
    ];

    /// The paper's original twelve scenarios (Table VI), excluding the
    /// failure-rate extension.
    pub fn paper() -> &'static [Scenario] {
        &Scenario::ALL[..12]
    }

    /// The six varying values of this scenario (Table VI columns).
    pub fn values(self) -> [f64; 6] {
        match self {
            Scenario::JobMix => [0.0, 20.0, 40.0, 60.0, 80.0, 100.0],
            Scenario::Workload => [0.02, 0.10, 0.25, 0.50, 0.75, 1.00],
            Scenario::Inaccuracy => [0.0, 20.0, 40.0, 60.0, 80.0, 100.0],
            Scenario::Bias(_) | Scenario::Ratio(_) | Scenario::LowMean(_) => {
                [1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
            }
            Scenario::FailureRate => [0.0, 0.25, 0.5, 1.0, 2.0, 4.0],
        }
    }

    /// Human-readable label (figure legends, reports).
    pub fn label(self) -> String {
        let attr = |a: QosAttr| match a {
            QosAttr::Deadline => "deadline",
            QosAttr::Budget => "budget",
            QosAttr::Penalty => "penalty",
        };
        match self {
            Scenario::JobMix => "job mix (% high urgency)".to_string(),
            Scenario::Workload => "workload (arrival delay factor)".to_string(),
            Scenario::Inaccuracy => "inaccuracy of runtime estimates (%)".to_string(),
            Scenario::Bias(a) => format!("{} bias", attr(a)),
            Scenario::Ratio(a) => format!("{} high:low ratio", attr(a)),
            Scenario::LowMean(a) => format!("{} low-value mean", attr(a)),
            Scenario::FailureRate => "failure rate (node failures/week)".to_string(),
        }
    }

    /// Builds the scenario transform for one experiment point: the set's
    /// defaults with this scenario's parameter overridden to `value`.
    pub fn transform(self, set: EstimateSet, value: f64) -> ScenarioTransform {
        let mut t = baseline(set);
        match self {
            Scenario::JobMix => t.qos.pct_high_urgency = value,
            Scenario::Workload => t.arrival_delay_factor = value,
            Scenario::Inaccuracy => t.inaccuracy_pct = value,
            Scenario::Bias(a) => attr_mut(&mut t.qos, a).bias = value,
            Scenario::Ratio(a) => attr_mut(&mut t.qos, a).high_low_ratio = value,
            Scenario::LowMean(a) => attr_mut(&mut t.qos, a).low_mean = value,
            // Failure rate varies the *cluster*, not the workload: the jobs
            // are the set's exact baseline so the zero-rate point reproduces
            // the fault-free results bit for bit.
            Scenario::FailureRate => {}
        }
        t
    }

    /// Failure-injection configuration for one experiment point: `Some` only
    /// for [`Scenario::FailureRate`] with a nonzero rate. `value` is
    /// failures per node-week (exponential MTBF = week ÷ value, exponential
    /// MTTR = 2 h, restart-from-scratch, at most 3 restarts per job). The
    /// fault seed mixes `seed` with a fixed tag so the failure timeline is
    /// independent of workload sampling, and is the same for every policy
    /// facing the same experiment point — competing policies see identical
    /// weather.
    pub fn fault(self, value: f64, seed: u64) -> Option<FaultConfig> {
        const WEEK_SECS: f64 = 7.0 * 24.0 * 3600.0;
        const FAULT_SEED_TAG: u64 = 0xFA11_7AB1_E5EE_D001;
        match self {
            Scenario::FailureRate if value > 0.0 => Some(FaultConfig::exponential(
                seed ^ FAULT_SEED_TAG,
                WEEK_SECS / value,
                2.0 * 3600.0,
            )),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

fn attr_mut(qos: &mut QosConfig, a: QosAttr) -> &mut ccs_workload::FactorSpec {
    match a {
        QosAttr::Deadline => &mut qos.deadline,
        QosAttr::Budget => &mut qos.budget,
        QosAttr::Penalty => &mut qos.penalty,
    }
}

/// The default (all-underlined) experiment settings of `set`
/// (paper Table VI; the exact defaults are documented in DESIGN.md §4).
pub fn baseline(set: EstimateSet) -> ScenarioTransform {
    ScenarioTransform {
        qos: QosConfig::default(), // 20 % high urgency; bias 2, ratio 4, mean 4
        arrival_delay_factor: 0.25,
        inaccuracy_pct: set.default_inaccuracy(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_scenarios_six_values_each() {
        assert_eq!(Scenario::ALL.len(), 13);
        assert_eq!(Scenario::paper().len(), 12);
        assert!(!Scenario::paper().contains(&Scenario::FailureRate));
        for s in Scenario::ALL {
            assert_eq!(s.values().len(), 6);
        }
    }

    #[test]
    fn failure_rate_scenario_shape() {
        // First point is the exact fault-free baseline ...
        assert_eq!(Scenario::FailureRate.values()[0], 0.0);
        assert!(Scenario::FailureRate.fault(0.0, 42).is_none());
        // ... every other scenario never injects faults ...
        for s in Scenario::paper() {
            assert!(s.fault(10.0, 42).is_none(), "{s:?}");
        }
        // ... and nonzero rates yield a validated config whose MTBF scales
        // inversely with the rate.
        let f1 = Scenario::FailureRate.fault(1.0, 42).unwrap();
        let f4 = Scenario::FailureRate.fault(4.0, 42).unwrap();
        f1.validate().unwrap();
        assert!((f1.mtbf.mean() / f4.mtbf.mean() - 4.0).abs() < 1e-9);
        assert_eq!(f1.seed, f4.seed, "same weather seed across the sweep");
        // The transform itself is the untouched baseline.
        let t = Scenario::FailureRate.transform(EstimateSet::A, 4.0);
        let b = baseline(EstimateSet::A);
        assert_eq!(t.arrival_delay_factor, b.arrival_delay_factor);
        assert_eq!(t.inaccuracy_pct, b.inaccuracy_pct);
        assert_eq!(t.qos.pct_high_urgency, b.qos.pct_high_urgency);
    }

    #[test]
    fn table_vi_values() {
        assert_eq!(
            Scenario::Workload.values(),
            [0.02, 0.10, 0.25, 0.50, 0.75, 1.00]
        );
        assert_eq!(
            Scenario::JobMix.values(),
            [0.0, 20.0, 40.0, 60.0, 80.0, 100.0]
        );
        assert_eq!(
            Scenario::Bias(QosAttr::Deadline).values(),
            [1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
        );
    }

    #[test]
    fn sets_differ_only_in_inaccuracy_default() {
        let a = baseline(EstimateSet::A);
        let b = baseline(EstimateSet::B);
        assert_eq!(a.inaccuracy_pct, 0.0);
        assert_eq!(b.inaccuracy_pct, 100.0);
        assert_eq!(a.arrival_delay_factor, b.arrival_delay_factor);
        assert_eq!(a.qos.pct_high_urgency, b.qos.pct_high_urgency);
    }

    #[test]
    fn transform_overrides_only_its_parameter() {
        let t = Scenario::JobMix.transform(EstimateSet::A, 80.0);
        assert_eq!(t.qos.pct_high_urgency, 80.0);
        assert_eq!(t.arrival_delay_factor, 0.25);

        let t = Scenario::Ratio(QosAttr::Budget).transform(EstimateSet::B, 10.0);
        assert_eq!(t.qos.budget.high_low_ratio, 10.0);
        assert_eq!(t.qos.deadline.high_low_ratio, 4.0, "others stay default");
        assert_eq!(t.inaccuracy_pct, 100.0);

        let t = Scenario::Inaccuracy.transform(EstimateSet::B, 20.0);
        assert_eq!(
            t.inaccuracy_pct, 20.0,
            "scenario value overrides the set default"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> =
            Scenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 13);
    }
}
