//! Capturing one traced run: per-job SLA trace, provenance manifest, and
//! export writers (JSONL + Chrome `trace_event`).
//!
//! [`capture_cell`] runs a single grid cell (one economic model × estimate
//! set × scenario value × policy) with tracing on and packages the result
//! as a [`TraceBundle`]. [`write_bundle`] persists the three artifacts:
//!
//! * `trace.jsonl` — one serialised `TraceRecord` per line;
//! * `manifest.json` — the [`ProvenanceManifest`] (seed, scenario, policy,
//!   workload params, crate versions, feature legs, reference metrics);
//! * `trace.chrome.json` — Chrome `trace_event` JSON loadable in Perfetto
//!   (<https://ui.perfetto.dev>): per-job wait/run slices on one track per
//!   job, rejection instants, kernel-span instants.

use crate::grid::ExperimentConfig;
use crate::scenario::{EstimateSet, Scenario};
use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_simsvc::{simulate_traced, RunConfig, RunResult, RunTrace, Timeline};
use ccs_telemetry::trace::{TraceEvent, TraceRecord, TRACE_SCHEMA_VERSION};
use ccs_workload::apply_scenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Version of the provenance-manifest schema. Bumped on any change to the
/// manifest's fields, like [`TRACE_SCHEMA_VERSION`] for trace records.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// Timeline bucket width used for the manifest's utilization summary.
const TIMELINE_BUCKET_SECS: f64 = 3600.0;

/// Which grid cell to trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceCellSpec {
    /// Economic model.
    pub econ: EconomicModel,
    /// Estimate set (A = accurate, B = trace estimates).
    pub set: EstimateSet,
    /// Scenario axis.
    pub scenario: Scenario,
    /// Index into the scenario's six values.
    pub value_idx: usize,
    /// Policy under trace.
    pub policy: PolicyKind,
}

impl Default for TraceCellSpec {
    /// The paper's baseline cell: commodity market, Set B, the default 20%
    /// high-urgency job mix, FCFS-BF.
    fn default() -> Self {
        TraceCellSpec {
            econ: EconomicModel::CommodityMarket,
            set: EstimateSet::B,
            scenario: Scenario::ALL[0],
            value_idx: 1,
            policy: PolicyKind::FcfsBf,
        }
    }
}

impl TraceCellSpec {
    /// Consumes the spec's flags (`--econ commodity|bid`, `--set A|B`,
    /// `--scenario IDX`, `--value IDX`, `--policy NAME`) from `args`,
    /// leaving unrelated flags in place for the shared CLI parser.
    pub fn parse_args(args: &mut Vec<String>) -> Result<TraceCellSpec, String> {
        let mut spec = TraceCellSpec::default();
        let mut take = |flag: &str| -> Result<Option<String>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) if i + 1 < args.len() => {
                    args.remove(i);
                    Ok(Some(args.remove(i)))
                }
                Some(_) => Err(format!("{flag} requires a value")),
            }
        };
        if let Some(v) = take("--econ")? {
            spec.econ = match v.as_str() {
                "commodity" => EconomicModel::CommodityMarket,
                "bid" => EconomicModel::BidBased,
                other => return Err(format!("--econ {other}: expected commodity|bid")),
            };
        }
        if let Some(v) = take("--set")? {
            spec.set = match v.as_str() {
                "A" | "a" => EstimateSet::A,
                "B" | "b" => EstimateSet::B,
                other => return Err(format!("--set {other}: expected A|B")),
            };
        }
        if let Some(v) = take("--scenario")? {
            let idx: usize = v.parse().map_err(|_| {
                format!(
                    "--scenario {v}: expected an index 0..{}",
                    Scenario::ALL.len()
                )
            })?;
            spec.scenario = *Scenario::ALL.get(idx).ok_or(format!(
                "--scenario {idx}: only 0..{} exist",
                Scenario::ALL.len()
            ))?;
        }
        if let Some(v) = take("--value")? {
            let idx: usize = v
                .parse()
                .map_err(|_| format!("--value {v}: expected an index 0..6"))?;
            if idx >= 6 {
                return Err(format!("--value {idx}: only 0..6 exist"));
            }
            spec.value_idx = idx;
        }
        if let Some(v) = take("--policy")? {
            spec.policy = parse_policy(&v).ok_or(format!(
                "--policy {v}: expected one of FCFS-BF SJF-BF EDF-BF Libra Libra+$ LibraRiskD FirstReward"
            ))?;
        }
        let allowed = policies_of(spec.econ);
        if !allowed.contains(&spec.policy) {
            return Err(format!(
                "policy {} is not evaluated under the {} model",
                spec.policy, spec.econ
            ));
        }
        Ok(spec)
    }
}

fn policies_of(econ: EconomicModel) -> [PolicyKind; 5] {
    match econ {
        EconomicModel::CommodityMarket => PolicyKind::COMMODITY,
        EconomicModel::BidBased => PolicyKind::BID_BASED,
    }
}

/// Parses a policy display name (case-insensitive).
pub fn parse_policy(name: &str) -> Option<PolicyKind> {
    [
        PolicyKind::FcfsBf,
        PolicyKind::SjfBf,
        PolicyKind::EdfBf,
        PolicyKind::Libra,
        PolicyKind::LibraDollar,
        PolicyKind::LibraRiskD,
        PolicyKind::FirstReward,
    ]
    .into_iter()
    .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Reference metrics copied from the runner into the manifest, so a trace
/// report can cross-check Eqs. 1–4 without re-running the simulation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ManifestMetrics {
    /// Jobs submitted.
    pub submitted: u32,
    /// SLAs accepted.
    pub accepted: u32,
    /// Jobs fulfilled (completed within deadline).
    pub fulfilled: u32,
    /// Sum of wait times over fulfilled jobs (seconds).
    pub wait_sum_fulfilled: f64,
    /// Total provider utility.
    pub utility_total: f64,
    /// Total offered budget.
    pub budget_total: f64,
    /// Eq. 1 — mean wait of fulfilled jobs (seconds).
    pub wait: f64,
    /// Eq. 2 — SLA percentage.
    pub sla_pct: f64,
    /// Eq. 3 — reliability percentage.
    pub reliability_pct: f64,
    /// Eq. 4 — profitability percentage.
    pub profitability_pct: f64,
}

impl ManifestMetrics {
    fn of(result: &RunResult) -> ManifestMetrics {
        let m = &result.metrics;
        let [wait, sla, rel, prof] = m.objectives();
        ManifestMetrics {
            submitted: m.submitted,
            accepted: m.accepted,
            fulfilled: m.fulfilled,
            wait_sum_fulfilled: m.wait_sum_fulfilled,
            utility_total: m.utility_total,
            budget_total: m.budget_total,
            wait,
            sla_pct: sla,
            reliability_pct: rel,
            profitability_pct: prof,
        }
    }
}

/// Workload-synthesis parameters recorded for reproducibility.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of synthetic jobs.
    pub jobs: u64,
    /// Mean interarrival time (seconds).
    pub mean_interarrival: f64,
    /// Mean runtime (seconds).
    pub mean_runtime: f64,
}

/// Everything needed to reproduce and interpret one traced run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProvenanceManifest {
    /// [`MANIFEST_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// [`TRACE_SCHEMA_VERSION`] of the trace records next to this manifest.
    pub trace_schema_version: u32,
    /// Master seed of the workload synthesis.
    pub seed: u64,
    /// Cluster size in processors.
    pub nodes: u32,
    /// Workload-synthesis parameters.
    pub workload: WorkloadParams,
    /// Economic model display name.
    pub econ: String,
    /// Estimate set label.
    pub set: String,
    /// Scenario label.
    pub scenario: String,
    /// Index of the scenario value (0..6).
    pub value_idx: u64,
    /// The scenario value itself.
    pub value: f64,
    /// Policy display name.
    pub policy: String,
    /// Workspace crate versions at capture time.
    pub crates: BTreeMap<String, String>,
    /// Compiled-in feature legs (`telemetry`, `trace`).
    pub features: Vec<String>,
    /// Mean processor utilization over the run (0–1, hourly buckets).
    pub mean_utilization: f64,
    /// Peak accepted-but-waiting queue depth.
    pub peak_waiting: u64,
    /// The runner's aggregate metrics, for cross-checking.
    pub metrics: ManifestMetrics,
}

/// One traced cell: manifest + trace + the untouched run result.
#[derive(Clone, Debug)]
pub struct TraceBundle {
    /// Provenance manifest.
    pub manifest: ProvenanceManifest,
    /// The run's trace.
    pub trace: RunTrace,
    /// The run's ordinary result (identical to an untraced run).
    pub result: RunResult,
}

/// Runs `spec`'s cell with tracing on and assembles the bundle.
pub fn capture_cell(spec: &TraceCellSpec, cfg: &ExperimentConfig) -> TraceBundle {
    let base = cfg.trace.generate(cfg.seed);
    let value = spec.scenario.values()[spec.value_idx];
    let transform = spec.scenario.transform(spec.set, value);
    let jobs = apply_scenario(&base, &transform, cfg.seed);
    let run_cfg = RunConfig {
        nodes: cfg.nodes,
        econ: spec.econ,
    };
    // The failure-rate scenario injects faults exactly as the grid does, so
    // a traced cell reproduces its grid counterpart bit for bit.
    let (result, trace) = match spec.scenario.fault(value, cfg.seed) {
        Some(fault) => ccs_simsvc::simulate_traced_faulty(&jobs, spec.policy, &run_cfg, &fault),
        None => simulate_traced(&jobs, spec.policy, &run_cfg),
    };
    let timeline = Timeline::from_run(&jobs, &result.records, cfg.nodes, TIMELINE_BUCKET_SECS);

    let version = env!("CARGO_PKG_VERSION").to_string();
    let crates: BTreeMap<String, String> = [
        "ccs-des",
        "ccs-workload",
        "ccs-cluster",
        "ccs-economy",
        "ccs-policies",
        "ccs-risk",
        "ccs-simsvc",
        "ccs-telemetry",
        "ccs-experiments",
    ]
    .iter()
    .map(|name| (name.to_string(), version.clone()))
    .collect();

    let mut features = Vec::new();
    if ccs_telemetry::ENABLED {
        features.push("telemetry".to_string());
    }
    if ccs_telemetry::trace::TRACE_ENABLED {
        features.push("trace".to_string());
    }

    let manifest = ProvenanceManifest {
        schema_version: MANIFEST_SCHEMA_VERSION,
        trace_schema_version: TRACE_SCHEMA_VERSION,
        seed: cfg.seed,
        nodes: cfg.nodes,
        workload: WorkloadParams {
            jobs: cfg.trace.jobs as u64,
            mean_interarrival: cfg.trace.mean_interarrival,
            mean_runtime: cfg.trace.mean_runtime,
        },
        econ: spec.econ.to_string(),
        set: spec.set.label().to_string(),
        scenario: spec.scenario.label(),
        value_idx: spec.value_idx as u64,
        value,
        policy: spec.policy.name().to_string(),
        crates,
        features,
        mean_utilization: timeline.mean_utilization(),
        peak_waiting: timeline.peak_waiting() as u64,
        metrics: ManifestMetrics::of(&result),
    };

    TraceBundle {
        manifest,
        trace,
        result,
    }
}

/// Serialises a trace as JSON Lines: one record per line, in causal order.
pub fn trace_jsonl(trace: &RunTrace) -> String {
    let mut s = String::with_capacity(trace.records.len() * 96);
    for r in &trace.records {
        s.push_str(&serde_json::to_string(r).expect("trace records always serialise"));
        s.push('\n');
    }
    s
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the trace as Chrome `trace_event` JSON (the object form, with a
/// `traceEvents` array), loadable in Perfetto or `about://tracing`.
///
/// Sim seconds become microseconds (the format's native unit). Each job is
/// one thread track: a `wait` slice from submit to start, a `run` slice
/// from start to finish, and an instant for rejections; kernel spans land
/// on tid 0 as instants with their counters as args. Two counter (`"C"`)
/// tracks ride along: a `jobs` track plotting waiting/running occupancy at
/// every transition, and a `kernel_queue` track plotting the event-queue
/// high-water mark per kernel span — Perfetto renders both as area charts
/// above the slices.
pub fn chrome_trace_json(trace: &RunTrace) -> String {
    #[derive(Default, Clone, Copy)]
    struct Life {
        submit: Option<f64>,
        start: Option<f64>,
        finish: Option<f64>,
        fulfilled: bool,
        utility: f64,
    }
    let mut lives: BTreeMap<u64, Life> = BTreeMap::new();
    let mut rejects: Vec<(u64, f64, String)> = Vec::new();
    let mut kernel: Vec<(f64, ccs_telemetry::trace::KernelSpan)> = Vec::new();
    for r in &trace.records {
        match &r.event {
            TraceEvent::JobSubmitted { job, .. } => {
                lives.entry(*job).or_default().submit = Some(r.t);
            }
            TraceEvent::JobStarted { job, .. } => {
                lives.entry(*job).or_default().start = Some(r.t);
            }
            TraceEvent::JobCompleted {
                job,
                finish,
                fulfilled,
                utility,
                ..
            } => {
                let l = lives.entry(*job).or_default();
                l.finish = Some(*finish);
                l.fulfilled = *fulfilled;
                l.utility = *utility;
            }
            TraceEvent::SlaRejected { job, reason } => {
                rejects.push((*job, r.t, reason.clone()));
            }
            TraceEvent::KernelSpan(span) => kernel.push((r.t, *span)),
            _ => {}
        }
    }

    let us = |secs: f64| secs * 1e6;
    let mut events: Vec<String> = Vec::with_capacity(lives.len() * 2 + rejects.len() + 2);
    events.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{{"name":"ccs {} ({})"}}}}"#,
        esc(&trace.policy),
        esc(&trace.econ)
    ));
    for (job, l) in &lives {
        let Some(submit) = l.submit else { continue };
        if let Some(start) = l.start {
            if start > submit {
                events.push(format!(
                    r#"{{"name":"wait","cat":"sla","ph":"X","pid":1,"tid":{job},"ts":{:.3},"dur":{:.3}}}"#,
                    us(submit),
                    us(start - submit)
                ));
            }
            if let Some(finish) = l.finish {
                events.push(format!(
                    r#"{{"name":"run","cat":"sla","ph":"X","pid":1,"tid":{job},"ts":{:.3},"dur":{:.3},"args":{{"fulfilled":{},"utility":{:.6}}}}}"#,
                    us(start),
                    us(finish - start),
                    l.fulfilled,
                    l.utility
                ));
            }
        }
    }
    for (job, t, reason) in &rejects {
        events.push(format!(
            r#"{{"name":"rejected: {}","cat":"sla","ph":"i","pid":1,"tid":{job},"ts":{:.3},"s":"t"}}"#,
            esc(reason),
            us(*t)
        ));
    }
    for (t, span) in &kernel {
        events.push(format!(
            r#"{{"name":"kernel_span","cat":"des","ph":"i","pid":1,"tid":0,"ts":{:.3},"s":"p","args":{{"scheduled":{},"processed":{},"cancelled":{},"tombstone_skips":{},"depth_hwm":{}}}}}"#,
            us(*t),
            span.scheduled,
            span.processed,
            span.cancelled,
            span.tombstone_skips,
            span.depth_hwm
        ));
        events.push(format!(
            r#"{{"name":"kernel_queue","cat":"des","ph":"C","pid":1,"tid":0,"ts":{:.3},"args":{{"depth_hwm":{}}}}}"#,
            us(*t),
            span.depth_hwm
        ));
    }

    // The `jobs` counter track: waiting/running occupancy sampled at every
    // transition. Waiting = submitted but not yet started; a job that never
    // starts leaves the waiting count at its rejection instant.
    let mut transitions: Vec<(f64, i64, i64)> = Vec::new(); // (t, Δwaiting, Δrunning)
    for (job, l) in &lives {
        let Some(submit) = l.submit else { continue };
        transitions.push((submit, 1, 0));
        match l.start {
            Some(start) => {
                transitions.push((start, -1, 1));
                if let Some(finish) = l.finish {
                    transitions.push((finish, 0, -1));
                }
            }
            None => {
                if let Some((_, t, _)) = rejects.iter().find(|(j, _, _)| j == job) {
                    transitions.push((*t, -1, 0));
                }
            }
        }
    }
    transitions.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut waiting = 0i64;
    let mut running = 0i64;
    for (t, dw, dr) in transitions {
        waiting += dw;
        running += dr;
        events.push(format!(
            r#"{{"name":"jobs","cat":"sla","ph":"C","pid":1,"tid":0,"ts":{:.3},"args":{{"waiting":{},"running":{}}}}}"#,
            us(t),
            waiting.max(0),
            running.max(0)
        ));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

/// Writes `trace.jsonl`, `manifest.json`, and `trace.chrome.json` under
/// `dir` (created if missing). Returns the paths written.
pub fn write_bundle(bundle: &TraceBundle, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let jsonl = dir.join("trace.jsonl");
    std::fs::write(&jsonl, trace_jsonl(&bundle.trace))?;
    let manifest = dir.join("manifest.json");
    let mut manifest_json =
        serde_json::to_string_pretty(&bundle.manifest).expect("manifest always serialises");
    manifest_json.push('\n');
    std::fs::write(&manifest, manifest_json)?;
    let chrome = dir.join("trace.chrome.json");
    std::fs::write(&chrome, chrome_trace_json(&bundle.trace))?;
    Ok(vec![jsonl, manifest, chrome])
}

/// Parses a `trace.jsonl` payload back into records.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            serde_json::from_str::<TraceRecord>(l).map_err(|e| format!("line {}: {e:?}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_round_trips_through_jsonl() {
        let cfg = ExperimentConfig::quick().with_jobs(40);
        let bundle = capture_cell(&TraceCellSpec::default(), &cfg);
        assert_eq!(bundle.manifest.metrics.submitted, 40);
        assert_eq!(bundle.manifest.policy, "FCFS-BF");
        let back = parse_jsonl(&trace_jsonl(&bundle.trace)).unwrap();
        assert_eq!(back, bundle.trace.records);
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let cfg = ExperimentConfig::quick().with_jobs(25);
        let bundle = capture_cell(&TraceCellSpec::default(), &cfg);
        let chrome = chrome_trace_json(&bundle.trace);
        let v = serde_json::parse_value_str(&chrome).expect("chrome trace parses as JSON");
        let Some(serde::Value::Seq(events)) = v.get("traceEvents") else {
            panic!("traceEvents array missing")
        };
        assert!(!events.is_empty());
        // The jobs counter track exists and its running count peaks > 0.
        let mut max_running = 0i64;
        for e in events {
            if e.get("name").and_then(|n| match n {
                serde::Value::Str(s) => Some(s.as_str()),
                _ => None,
            }) == Some("jobs")
            {
                assert_eq!(e.get("ph"), Some(&serde::Value::Str("C".to_string())));
                if let Some(serde::Value::Int(r)) = e.get("args").and_then(|a| a.get("running")) {
                    max_running = max_running.max(*r);
                }
            }
        }
        assert!(
            max_running > 0,
            "jobs counter track never saw a running job"
        );
    }

    #[test]
    fn spec_parser_strips_its_flags_and_validates() {
        let mut args: Vec<String> = ["--policy", "libra", "--quick", "--econ", "bid"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let spec = TraceCellSpec::parse_args(&mut args).unwrap();
        assert_eq!(spec.policy, PolicyKind::Libra);
        assert_eq!(spec.econ, EconomicModel::BidBased);
        assert_eq!(args, vec!["--quick".to_string()]);

        let mut bad: Vec<String> = ["--policy", "SJF-BF", "--econ", "bid"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(
            TraceCellSpec::parse_args(&mut bad).is_err(),
            "SJF-BF is commodity-only"
        );
    }
}
