//! Trace analysis: reconstructs per-job SLA lifecycles from a trace-record
//! stream, recomputes the paper's four objectives (Eqs. 1–4) from the trace
//! alone, and cross-checks them against the runner's metrics — the
//! correctness oracle tying the tracing layer to the metrics pipeline.

use crate::trace_run::ManifestMetrics;
use ccs_telemetry::trace::{check_causal_order, KernelSpan, TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Relative tolerance for the float objectives (Eqs. 1 and 4): trace
/// analysis sums in sorted-trace order while the runner sums in
/// outcome-stream order, so the totals may differ by rounding.
const REL_TOL: f64 = 1e-9;

/// One job's SLA lifecycle, reconstructed from its trace events.
#[derive(Clone, Debug, Default)]
pub struct JobLifecycle {
    /// Job id.
    pub job: u64,
    /// Submission time (sim seconds).
    pub submit: f64,
    /// Offered budget (dollars).
    pub budget: f64,
    /// Whether the SLA was accepted.
    pub accepted: bool,
    /// Rejection reason code, for rejected jobs.
    pub reject_reason: Option<String>,
    /// Start time, once started.
    pub start: Option<f64>,
    /// Wait from submission to start (seconds), once started.
    pub wait: Option<f64>,
    /// Finish time, once completed.
    pub finish: Option<f64>,
    /// Whether the job finished within its deadline.
    pub fulfilled: bool,
    /// Whether an `sla_violated` event was recorded.
    pub violated: bool,
    /// Utility earned on this job (dollars).
    pub utility: f64,
    /// Penalty paid on this job (dollars).
    pub penalty: f64,
    /// Failure-induced restarts (re-admissions) of this job.
    pub restarts: u32,
}

/// Kernel-event counters aggregated over all spans in the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelTotals {
    /// Spans seen.
    pub spans: u64,
    /// Events scheduled.
    pub scheduled: u64,
    /// Events processed.
    pub processed: u64,
    /// Events cancelled.
    pub cancelled: u64,
    /// Tombstones skipped on pop.
    pub tombstone_skips: u64,
    /// Maximum queue-depth high-water mark over spans.
    pub depth_hwm: u64,
}

impl KernelTotals {
    fn absorb(&mut self, s: &KernelSpan) {
        self.spans += 1;
        self.scheduled += s.scheduled;
        self.processed += s.processed;
        self.cancelled += s.cancelled;
        self.tombstone_skips += s.tombstone_skips;
        self.depth_hwm = self.depth_hwm.max(s.depth_hwm);
    }
}

/// The result of analysing a trace-record stream.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Per-job lifecycles, ordered by job id.
    pub lifecycles: Vec<JobLifecycle>,
    /// Jobs submitted.
    pub submitted: u32,
    /// SLAs accepted.
    pub accepted: u32,
    /// SLAs rejected.
    pub rejected: u32,
    /// Jobs fulfilled.
    pub fulfilled: u32,
    /// SLA violations (accepted but missed deadline).
    pub violated: u32,
    /// Σ wait over fulfilled jobs (Eq. 1 numerator).
    pub wait_sum_fulfilled: f64,
    /// Σ utility over completed jobs (Eq. 4 numerator).
    pub utility_total: f64,
    /// Σ budget over submitted jobs (Eq. 4 denominator).
    pub budget_total: f64,
    /// Σ penalties over violated jobs.
    pub penalty_total: f64,
    /// Rejection counts keyed by reason code.
    pub rejection_reasons: BTreeMap<String, u32>,
    /// Node-failure events in the trace (fault injection).
    pub node_failures: u32,
    /// Node-repair events in the trace (fault injection).
    pub node_repairs: u32,
    /// Failure-induced job restarts across all jobs.
    pub restarts: u32,
    /// Aggregated DES-kernel counters (empty without the `trace` feature).
    pub kernel: KernelTotals,
    /// Total records analysed.
    pub records: usize,
}

/// Reconstructs per-job lifecycles and aggregate counters from a record
/// stream. Fails if the stream is not causally ordered (see
/// [`check_causal_order`]) or events arrive for a job never submitted.
pub fn analyze(records: &[TraceRecord]) -> Result<TraceAnalysis, String> {
    check_causal_order(records)?;

    let mut lives: BTreeMap<u64, JobLifecycle> = BTreeMap::new();
    let mut kernel = KernelTotals::default();
    let mut node_failures: u32 = 0;
    let mut node_repairs: u32 = 0;
    let known = |lives: &mut BTreeMap<u64, JobLifecycle>, job: u64, what: &str| {
        if lives.contains_key(&job) {
            Ok(())
        } else {
            Err(format!("{what} for job {job} which was never submitted"))
        }
    };
    for r in records {
        match &r.event {
            TraceEvent::JobSubmitted { job, budget, .. } => {
                if lives
                    .insert(
                        *job,
                        JobLifecycle {
                            job: *job,
                            submit: r.t,
                            budget: *budget,
                            ..JobLifecycle::default()
                        },
                    )
                    .is_some()
                {
                    return Err(format!("job {job} submitted twice"));
                }
            }
            TraceEvent::BidEvaluated { job, .. } => known(&mut lives, *job, "bid_evaluated")?,
            TraceEvent::SlaAccepted { job } => {
                known(&mut lives, *job, "sla_accepted")?;
                lives.get_mut(job).unwrap().accepted = true;
            }
            TraceEvent::SlaRejected { job, reason } => {
                known(&mut lives, *job, "sla_rejected")?;
                lives.get_mut(job).unwrap().reject_reason = Some(reason.clone());
            }
            TraceEvent::JobStarted { job, wait } => {
                known(&mut lives, *job, "job_started")?;
                let l = lives.get_mut(job).unwrap();
                // A restarted job starts more than once; Eq. 1 measures the
                // wait to its *first* start, so later starts don't overwrite.
                if l.start.is_none() {
                    l.start = Some(r.t);
                    l.wait = Some(*wait);
                }
            }
            TraceEvent::JobCompleted {
                job,
                finish,
                fulfilled,
                utility,
                ..
            } => {
                known(&mut lives, *job, "job_completed")?;
                let l = lives.get_mut(job).unwrap();
                l.finish = Some(*finish);
                l.fulfilled = *fulfilled;
                l.utility = *utility;
            }
            TraceEvent::SlaViolated {
                job,
                penalty,
                utility,
                ..
            } => {
                known(&mut lives, *job, "sla_violated")?;
                let l = lives.get_mut(job).unwrap();
                l.violated = true;
                l.penalty = *penalty;
                l.utility = *utility;
            }
            TraceEvent::JobRestart { job, .. } => {
                known(&mut lives, *job, "job_restart")?;
                let l = lives.get_mut(job).unwrap();
                l.restarts += 1;
                // The lifecycle rewinds: completion state is re-earned.
                l.finish = None;
                l.fulfilled = false;
            }
            TraceEvent::NodeFail { .. } => node_failures += 1,
            TraceEvent::NodeRepair { .. } => node_repairs += 1,
            TraceEvent::KernelSpan(span) => kernel.absorb(span),
        }
    }

    let mut a = TraceAnalysis {
        lifecycles: Vec::with_capacity(lives.len()),
        submitted: 0,
        accepted: 0,
        rejected: 0,
        fulfilled: 0,
        violated: 0,
        wait_sum_fulfilled: 0.0,
        utility_total: 0.0,
        budget_total: 0.0,
        penalty_total: 0.0,
        rejection_reasons: BTreeMap::new(),
        node_failures,
        node_repairs,
        restarts: 0,
        kernel,
        records: records.len(),
    };
    for (_, l) in lives {
        a.restarts += l.restarts;
        a.submitted += 1;
        a.budget_total += l.budget;
        if l.accepted {
            a.accepted += 1;
            a.utility_total += l.utility;
        } else {
            a.rejected += 1;
            let reason = l.reject_reason.clone().unwrap_or_else(|| "none".into());
            *a.rejection_reasons.entry(reason).or_insert(0) += 1;
        }
        if l.fulfilled {
            a.fulfilled += 1;
            a.wait_sum_fulfilled += l.wait.unwrap_or(0.0);
        }
        if l.violated {
            a.violated += 1;
            a.penalty_total += l.penalty;
        }
        a.lifecycles.push(l);
    }
    Ok(a)
}

impl TraceAnalysis {
    /// The four objectives recomputed from the trace, in paper order
    /// `[wait, SLA %, reliability %, profitability %]` — the degenerate
    /// cases follow `RunMetrics` exactly (no fulfilled jobs → 0 wait;
    /// nothing accepted → 100 % reliability; no budget → 0 % profit).
    pub fn objectives(&self) -> [f64; 4] {
        let wait = if self.fulfilled == 0 {
            0.0
        } else {
            self.wait_sum_fulfilled / self.fulfilled as f64
        };
        let sla = if self.submitted == 0 {
            0.0
        } else {
            self.fulfilled as f64 / self.submitted as f64 * 100.0
        };
        let rel = if self.accepted == 0 {
            100.0
        } else {
            self.fulfilled as f64 / self.accepted as f64 * 100.0
        };
        let prof = if self.budget_total <= 0.0 {
            0.0
        } else {
            (self.utility_total / self.budget_total * 100.0).max(0.0)
        };
        [wait, sla, rel, prof]
    }

    /// The `k` started jobs with the longest waits, longest first.
    pub fn top_wait(&self, k: usize) -> Vec<&JobLifecycle> {
        let mut started: Vec<&JobLifecycle> = self
            .lifecycles
            .iter()
            .filter(|l| l.wait.is_some())
            .collect();
        started.sort_by(|a, b| {
            b.wait
                .unwrap_or(0.0)
                .total_cmp(&a.wait.unwrap_or(0.0))
                .then(a.job.cmp(&b.job))
        });
        started.truncate(k);
        started
    }

    /// Compares the trace-derived objectives against the runner's metrics
    /// from the provenance manifest. Counts (and thus Eqs. 2/3) must match
    /// exactly; the float objectives (Eqs. 1/4) within [`REL_TOL`].
    /// Returns one message per mismatch — empty means the oracle passed.
    pub fn crosscheck(&self, m: &ManifestMetrics) -> Vec<String> {
        let mut bad = Vec::new();
        let mut exact_u32 = |name: &str, trace: u32, runner: u32| {
            if trace != runner {
                bad.push(format!("{name}: trace {trace} != runner {runner}"));
            }
        };
        exact_u32("submitted", self.submitted, m.submitted);
        exact_u32("accepted", self.accepted, m.accepted);
        exact_u32("fulfilled", self.fulfilled, m.fulfilled);

        let [wait, sla, rel, prof] = self.objectives();
        let close = |a: f64, b: f64| (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0);
        let mut approx = |name: &str, trace: f64, runner: f64| {
            if !close(trace, runner) {
                bad.push(format!("{name}: trace {trace} != runner {runner}"));
            }
        };
        approx(
            "wait_sum_fulfilled",
            self.wait_sum_fulfilled,
            m.wait_sum_fulfilled,
        );
        approx("utility_total", self.utility_total, m.utility_total);
        approx("budget_total", self.budget_total, m.budget_total);
        approx("Eq.1 wait", wait, m.wait);
        approx("Eq.4 profitability", prof, m.profitability_pct);
        // Eqs. 2/3 are ratios of the integer counts checked above, but
        // compare the recorded values too in case the manifest was edited.
        approx("Eq.2 SLA", sla, m.sla_pct);
        approx("Eq.3 reliability", rel, m.reliability_pct);
        bad
    }

    /// Renders the human-readable report: headline objectives, rejection
    /// root causes, the top-`k` waits, kernel totals, and — when the
    /// runner's metrics are available — the cross-check verdict.
    pub fn render(&self, metrics: Option<&ManifestMetrics>, k: usize) -> String {
        let mut s = String::new();
        let [wait, sla, rel, prof] = self.objectives();
        let _ = writeln!(
            s,
            "trace: {} records, {} jobs ({} accepted, {} rejected, {} fulfilled, {} violated)",
            self.records,
            self.submitted,
            self.accepted,
            self.rejected,
            self.fulfilled,
            self.violated
        );
        let _ = writeln!(s, "objectives recomputed from trace:");
        let _ = writeln!(s, "  Eq.1 wait           {wait:12.3} s");
        let _ = writeln!(s, "  Eq.2 SLA            {sla:12.3} %");
        let _ = writeln!(s, "  Eq.3 reliability    {rel:12.3} %");
        let _ = writeln!(s, "  Eq.4 profitability  {prof:12.3} %");
        let _ = writeln!(
            s,
            "  utility ${:.2} of ${:.2} offered; penalties ${:.2}",
            self.utility_total, self.budget_total, self.penalty_total
        );
        if self.node_failures > 0 || self.node_repairs > 0 || self.restarts > 0 {
            let _ = writeln!(
                s,
                "fault injection: {} node failures, {} repairs, {} job restarts",
                self.node_failures, self.node_repairs, self.restarts
            );
        }

        if self.rejection_reasons.is_empty() {
            let _ = writeln!(s, "rejections: none");
        } else {
            let _ = writeln!(s, "rejections by root cause:");
            for (reason, count) in &self.rejection_reasons {
                let _ = writeln!(s, "  {reason:<28} {count:6}");
            }
        }

        let top = self.top_wait(k);
        if !top.is_empty() {
            let _ = writeln!(s, "top-{} waits:", top.len());
            let _ = writeln!(
                s,
                "  {:>8} {:>12} {:>12} {:>12}",
                "job", "wait_s", "submit", "start"
            );
            for l in top {
                let _ = writeln!(
                    s,
                    "  {:>8} {:>12.3} {:>12.3} {:>12.3}",
                    l.job,
                    l.wait.unwrap_or(0.0),
                    l.submit,
                    l.start.unwrap_or(0.0)
                );
            }
        }

        if self.kernel.spans > 0 {
            let kt = &self.kernel;
            let _ = writeln!(
                s,
                "kernel: {} spans — {} scheduled, {} processed, {} cancelled, {} tombstone skips, depth hwm {}",
                kt.spans, kt.scheduled, kt.processed, kt.cancelled, kt.tombstone_skips, kt.depth_hwm
            );
        } else {
            let _ = writeln!(
                s,
                "kernel: no spans (build with --features trace to capture them)"
            );
        }

        match metrics {
            None => {
                let _ = writeln!(s, "cross-check: skipped (no manifest)");
            }
            Some(m) => {
                let bad = self.crosscheck(m);
                if bad.is_empty() {
                    let _ = writeln!(s, "cross-check vs runner metrics: OK (Eqs. 1-4 agree)");
                } else {
                    let _ = writeln!(s, "cross-check vs runner metrics: {} MISMATCHES", bad.len());
                    for b in &bad {
                        let _ = writeln!(s, "  MISMATCH {b}");
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ExperimentConfig;
    use crate::trace_run::{capture_cell, TraceCellSpec};

    #[test]
    fn analysis_matches_runner_metrics() {
        let cfg = ExperimentConfig::quick().with_jobs(60);
        let bundle = capture_cell(&TraceCellSpec::default(), &cfg);
        let a = analyze(&bundle.trace.records).unwrap();
        assert_eq!(a.crosscheck(&bundle.manifest.metrics), Vec::<String>::new());
        assert_eq!(a.rejected, a.submitted - a.accepted);
        let reasons: u32 = a.rejection_reasons.values().sum();
        assert_eq!(reasons, a.rejected);
    }

    #[test]
    fn top_wait_is_sorted_descending() {
        let cfg = ExperimentConfig::quick().with_jobs(60);
        let bundle = capture_cell(&TraceCellSpec::default(), &cfg);
        let a = analyze(&bundle.trace.records).unwrap();
        let top = a.top_wait(10);
        for pair in top.windows(2) {
            assert!(pair[0].wait.unwrap() >= pair[1].wait.unwrap());
        }
    }

    #[test]
    fn render_flags_tampered_metrics() {
        let cfg = ExperimentConfig::quick().with_jobs(30);
        let bundle = capture_cell(&TraceCellSpec::default(), &cfg);
        let a = analyze(&bundle.trace.records).unwrap();
        let ok = a.render(Some(&bundle.manifest.metrics), 5);
        assert!(ok.contains("cross-check vs runner metrics: OK"));
        let mut tampered = bundle.manifest.metrics;
        tampered.fulfilled += 1;
        assert!(!a.crosscheck(&tampered).is_empty());
    }
}
