//! Prints the mean separate-analysis performance of every policy for every
//! objective, per economic model and estimate set — the compact summary
//! used for calibration (DESIGN.md §6a) and cited in EXPERIMENTS.md.
//!
//! Usage: `summary_probe [--quick|--jobs N|--seed S]`. The default runs the
//! full 5000-job study (~1 min single-core).
use ccs_experiments::*;
use ccs_risk::Objective;

fn main() {
    let (cfg, _) =
        ccs_experiments::parse_cli_or_exit(&std::env::args().skip(1).collect::<Vec<_>>());
    let t0 = std::time::Instant::now();
    let ev = run_evaluation(&cfg);
    eprintln!("full evaluation in {:.1?}", t0.elapsed());
    for (label, g) in [
        ("commodity A", &ev.commodity_a),
        ("commodity B", &ev.commodity_b),
        ("bid A", &ev.bid_a),
        ("bid B", &ev.bid_b),
    ] {
        println!("\n== {label} ==");
        print!("{:<12}", "policy");
        for o in Objective::ALL {
            print!(" {:>8}", o.abbrev());
        }
        println!(" {:>8}", "ALL4");
        for name in g.policy_names.clone() {
            print!("{:<12}", name);
            let mut sum = 0.0;
            for o in Objective::ALL {
                let m = g.mean_performance(&name, o);
                sum += m;
                print!(" {:>8.3}", m);
            }
            println!(" {:>8.3}", sum / 4.0);
        }
    }
}
