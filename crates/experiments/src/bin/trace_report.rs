//! `trace_report` — offline analysis of a trace bundle written by
//! `utility_risk trace` (or any `trace.jsonl` in the same schema).
//!
//! ```text
//! trace_report DIR                reads DIR/trace.jsonl + DIR/manifest.json
//! trace_report FILE.jsonl         trace only (cross-check skipped)
//!   [--manifest FILE]             explicit manifest path
//!   [--top K]                     rows in the top-wait table (default 10)
//! ```
//!
//! Reconstructs every job's SLA lifecycle, recomputes the paper's four
//! objectives (Eqs. 1–4) from the trace alone, reports rejection root
//! causes and the longest-waiting jobs, and — when a manifest is present —
//! cross-checks the recomputed objectives against the runner's metrics,
//! exiting 1 on any disagreement.

use ccs_experiments::trace_report::analyze;
use ccs_experiments::trace_run::{parse_jsonl, ProvenanceManifest};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: trace_report <DIR|trace.jsonl> [--manifest FILE] [--top K]");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut manifest_path: Option<PathBuf> = None;
    let mut top = 10usize;
    if let Some(i) = args.iter().position(|a| a == "--manifest") {
        if i + 1 >= args.len() {
            usage();
        }
        args.remove(i);
        manifest_path = Some(PathBuf::from(args.remove(i)));
    }
    if let Some(i) = args.iter().position(|a| a == "--top") {
        if i + 1 >= args.len() {
            usage();
        }
        args.remove(i);
        top = args.remove(i).parse().unwrap_or_else(|_| usage());
    }
    if args.len() != 1 || args[0].starts_with("--") {
        usage();
    }

    let target = PathBuf::from(&args[0]);
    let trace_path = if target.is_dir() {
        if manifest_path.is_none() {
            let candidate = target.join("manifest.json");
            if candidate.exists() {
                manifest_path = Some(candidate);
            }
        }
        target.join("trace.jsonl")
    } else {
        target
    };

    let text = std::fs::read_to_string(&trace_path).unwrap_or_else(|e| {
        eprintln!("trace_report: cannot read {}: {e}", trace_path.display());
        std::process::exit(2);
    });
    let records = parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("trace_report: {}: {e}", trace_path.display());
        std::process::exit(1);
    });
    let analysis = analyze(&records).unwrap_or_else(|e| {
        eprintln!("trace_report: invalid trace: {e}");
        std::process::exit(1);
    });

    let manifest: Option<ProvenanceManifest> = manifest_path.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("trace_report: cannot read {}: {e}", p.display());
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("trace_report: {}: {e:?}", p.display());
            std::process::exit(1);
        })
    });

    if let Some(m) = &manifest {
        println!(
            "== {} / {} / {} = {} / {} (seed {}, {} jobs, {} nodes) ==",
            m.econ, m.set, m.scenario, m.value, m.policy, m.seed, m.workload.jobs, m.nodes
        );
    }
    let metrics = manifest.as_ref().map(|m| &m.metrics);
    print!("{}", analysis.render(metrics, top));
    if let Some(m) = metrics {
        if !analysis.crosscheck(m).is_empty() {
            std::process::exit(1);
        }
    }
}
