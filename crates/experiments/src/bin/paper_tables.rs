//! Prints the reproduction of paper Tables I–VI.
//!
//! Usage: `paper_tables [--table N]` — without arguments all six tables are
//! printed; `--table 3` prints only Table III.

use ccs_experiments::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => print!("{}", tables::all_tables()),
        [flag, n] if flag == "--table" => {
            let table = match n.as_str() {
                "1" => tables::table1(),
                "2" => tables::table2(),
                "3" => tables::table3(),
                "4" => tables::table4(),
                "5" => tables::table5(),
                "6" => tables::table6(),
                other => panic!("unknown table {other} (1-6)"),
            };
            print!("{table}");
        }
        other => panic!("usage: paper_tables [--table N], got {other:?}"),
    }
}
