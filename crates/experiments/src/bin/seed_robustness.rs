//! Re-runs the full evaluation under several independent seeds and reports
//! each policy's integrated performance as mean ± std across replications —
//! checking that the reproduced conclusions are not an artifact of one
//! synthetic trace realization.
//!
//! Usage: `seed_robustness [--quick|--jobs N]` (always uses seeds 1..=5).

use ccs_economy::EconomicModel;
use ccs_experiments::{replicate, EstimateSet};

fn main() {
    let (cfg, _) =
        ccs_experiments::parse_cli_or_exit(&std::env::args().skip(1).collect::<Vec<_>>());
    let seeds = [1u64, 2, 3, 4, 5];
    for econ in EconomicModel::ALL {
        for set in EstimateSet::ALL {
            let r = replicate(econ, set, &cfg, &seeds);
            println!("{}", r.render());
            println!("ordering by mean: {}\n", r.ordering().join(" > "));
        }
    }
}
