//! Reproduces paper Figure 5. Run with --quick for a small-trace smoke
//! run; the default regenerates the full 5000-job study for this figure.

use ccs_experiments::figures::{print_figure, write_figure};

fn main() {
    let (cfg, out) =
        ccs_experiments::parse_cli_or_exit(&std::env::args().skip(1).collect::<Vec<_>>());
    let fig = ccs_experiments::build_figure("fig5", &cfg);
    print!("{}", print_figure(&fig));
    let files = write_figure(&out, &fig).expect("write figure artifacts");
    eprintln!("wrote {} files under {}", files.len(), out.display());
}
