//! Times one full-size (5000-job, Set B default point) simulation run per
//! policy and economic model, printing the headline objective values — a
//! quick sanity check that the simulator is healthy and fast.

use ccs_experiments::*;
fn main() {
    let cfg = grid::ExperimentConfig::default();
    let base = cfg.trace.generate(cfg.seed);
    let t = scenario::baseline(scenario::EstimateSet::B);
    let jobs = ccs_workload::apply_scenario(&base, &t, cfg.seed);
    for econ in ccs_economy::EconomicModel::ALL {
        for kind in grid::policies_for(econ) {
            let t0 = std::time::Instant::now();
            let r = ccs_simsvc::simulate(&jobs, kind, &ccs_simsvc::RunConfig { nodes: 128, econ });
            println!(
                "{:>18} {:<12} {:>7.1?}  sla={:5.1}% rel={:5.1}% prof={:5.1}% wait={:8.0}s acc={}",
                format!("{econ}"),
                kind.name(),
                t0.elapsed(),
                r.metrics.sla_pct(),
                r.metrics.reliability_pct(),
                r.metrics.profitability_pct(),
                r.metrics.wait(),
                r.metrics.accepted
            );
        }
    }
}
