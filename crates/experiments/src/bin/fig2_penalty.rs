//! Reproduces paper Figure 2: the bid-based penalty function — utility vs
//! completion time, flat at the budget until the deadline, then decaying
//! linearly and unboundedly at the penalty rate.

use ccs_experiments::figures::figure2_curves;
use std::fmt::Write as _;

fn main() {
    let (_, out) =
        ccs_experiments::parse_cli_or_exit(&std::env::args().skip(1).collect::<Vec<_>>());
    let curves = figure2_curves();
    let mut dat = String::from("# fig2: utility vs completion time (s after submit)\n");
    for (label, curve) in &curves {
        println!("--- {label} ---");
        println!("{:>12} {:>14}", "t (s)", "utility ($)");
        let _ = writeln!(dat, "\n\n# {label}");
        for (i, (t, u)) in curve.iter().enumerate() {
            let _ = writeln!(dat, "{t:.1} {u:.2}");
            if i % 12 == 0 {
                println!("{t:>12.0} {u:>14.2}");
            }
        }
    }
    std::fs::create_dir_all(&out).expect("mkdir");
    let path = out.join("fig2.dat");
    std::fs::write(&path, dat).expect("write fig2.dat");
    let svg = out.join("fig2.svg");
    std::fs::write(&svg, ccs_experiments::figures::figure2_svg()).expect("write fig2.svg");
    eprintln!("wrote {} and {}", path.display(), svg.display());
}
