//! Regenerates every paper figure (1–8) and table (I–VI) in one run.
//!
//! The default configuration is the paper's 12 scenarios plus the
//! failure-rate extension: 13 scenarios × 6 values × 5 policies × 2
//! economic models × 2 estimate sets = 1560
//! simulation runs of 5000 jobs on a 128-node cluster. Use --quick (200
//! jobs) or --jobs N to shrink it, and --quiet to silence stderr progress.

use ccs_experiments::figures::{figure2_curves, print_figure, write_figure};
use ccs_experiments::{progress, run_evaluation, tables};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let (cfg, out, telemetry) =
        ccs_experiments::parse_cli_ext_or_exit(&std::env::args().skip(1).collect::<Vec<_>>());
    println!("{}", tables::all_tables());

    let t0 = Instant::now();
    progress::note(&format!(
        "running full evaluation: {} jobs, seed {} ...",
        cfg.trace.jobs, cfg.seed
    ));
    let ev = run_evaluation(&cfg);
    progress::note(&format!("evaluation finished in {:.1?}", t0.elapsed()));

    for fig in ev.paper_figures() {
        print!("{}", print_figure(&fig));
        write_figure(&out, &fig).expect("write figure artifacts");
    }

    // Markdown study report.
    std::fs::create_dir_all(&out).expect("mkdir");
    std::fs::write(
        out.join("report.md"),
        ccs_experiments::report_md::evaluation_report(&ev),
    )
    .expect("write report.md");

    // Machine-readable snapshot of every risk measure.
    ccs_experiments::EvaluationExport::from_evaluation(&ev)
        .write(&out.join("evaluation.json"))
        .expect("write evaluation.json");

    // Figure 2 (not a risk plot).
    let mut dat = String::new();
    for (label, curve) in figure2_curves() {
        let _ = writeln!(dat, "\n\n# {label}");
        for (t, u) in curve {
            let _ = writeln!(dat, "{t:.1} {u:.2}");
        }
    }
    std::fs::create_dir_all(&out).expect("mkdir");
    std::fs::write(out.join("fig2.dat"), dat).expect("write fig2.dat");
    std::fs::write(
        out.join("fig2.svg"),
        ccs_experiments::figures::figure2_svg(),
    )
    .expect("write fig2.svg");

    progress::note_raw(&ccs_experiments::telemetry_report::slowest_cells_summary(
        &ev.raw_grids,
        5,
    ));
    if let Some(path) = telemetry {
        ccs_experiments::TelemetryReport::collect(&ev.raw_grids)
            .write(&path)
            .expect("write telemetry report");
        progress::note(&format!("telemetry report written to {}", path.display()));
    }
    progress::note(&format!("artifacts under {}", out.display()));
}
