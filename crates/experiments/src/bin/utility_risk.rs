//! `utility-risk` — the umbrella CLI over every reproduction artifact.
//!
//! ```text
//! utility_risk tables [--table N]          Tables I–VI
//! utility_risk figure <fig1|fig3..fig8>    one figure (+ artifacts)
//! utility_risk all                         everything (figures + tables + report)
//! utility_risk ablations                   ablation studies + CaR comparison
//! utility_risk robustness                  seed-replication study
//! utility_risk summary                     per-policy objective means
//! utility_risk dominance                   pairwise stochastic dominance
//! utility_risk workload                    synthetic-workload statistics
//! utility_risk trace                       one traced run + SLA report
//! ```
//!
//! Every subcommand accepts the shared flags `--quick`, `--quiet`,
//! `--jobs N`, `--seed S`, `--threads T`, `--out DIR`. `trace` additionally
//! takes `--econ commodity|bid`, `--set A|B`, `--scenario IDX`,
//! `--value IDX`, `--policy NAME`.

use ccs_economy::EconomicModel;
use ccs_experiments::figures::{print_figure, write_figure};
use ccs_experiments::{
    build_figure, parse_cli_checked, progress, replicate, run_all_ablations, run_evaluation_ctl,
    tables, telemetry_report, trace_report, CellError, EstimateSet, GridControl, RawGrid,
    TelemetryReport, TraceCellSpec,
};
use ccs_risk::Objective;
use ccs_workload::{apply_scenario, WorkloadSummary};

fn usage() -> ! {
    eprintln!(
        "usage: utility_risk <tables|figure FIG|all|ablations|robustness|summary|dominance|workload|trace> \
         [--quick] [--quiet] [--jobs N] [--seed S] [--threads T] [--out DIR] [--telemetry FILE]\n\
         grid subcommands (all/summary/dominance) also take: [--resume JOURNAL] [--cell-budget N]\n\
         trace also takes: [--econ commodity|bid] [--set A|B] [--scenario IDX] [--value IDX] [--policy NAME]"
    );
    std::process::exit(2);
}

/// Strips `--resume FILE` and `--cell-budget N` (crash-safe grid control)
/// from the argument list before the shared parser sees them.
fn parse_grid_control(args: &mut Vec<String>) -> Result<GridControl, String> {
    let mut ctl = GridControl::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--resume" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--resume requires a journal path")?;
                ctl.journal = Some(std::path::PathBuf::from(v));
                args.drain(i..i + 2);
            }
            "--cell-budget" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--cell-budget requires a count")?;
                ctl.cell_budget = Some(
                    v.parse()
                        .map_err(|_| format!("--cell-budget: expected a count, got {v:?}"))?,
                );
                args.drain(i..i + 2);
            }
            _ => i += 1,
        }
    }
    Ok(ctl)
}

/// Reports panicked cells: writes `cell_errors.json` under `out` and prints
/// each error. Returns true when there was anything to report (the process
/// should then exit nonzero once the telemetry artifacts are flushed).
fn report_cell_errors(errors: &[CellError], out: &std::path::Path) -> bool {
    if errors.is_empty() {
        return false;
    }
    std::fs::create_dir_all(out).ok();
    let path = out.join("cell_errors.json");
    let json = serde_json::to_string_pretty(&errors.to_vec()).expect("cell errors serialise");
    std::fs::write(&path, json).expect("write cell_errors.json");
    for e in errors {
        eprintln!("utility_risk: {e}");
    }
    eprintln!(
        "utility_risk: {} grid cell(s) panicked — details in {} (rerun with --resume to retry \
         only the missing cells)",
        errors.len(),
        path.display()
    );
    true
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    // `figure` consumes one positional argument before the shared flags.
    let fig_id = if cmd == "figure" {
        if args.is_empty() || args[0].starts_with("--") {
            usage();
        }
        Some(args.remove(0))
    } else {
        None
    };
    // `trace` strips its cell-selection flags before the shared parser
    // (which panics on anything it does not know).
    let spec = if cmd == "trace" {
        match TraceCellSpec::parse_args(&mut args) {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("utility_risk trace: {e}");
                usage();
            }
        }
    } else {
        None
    };
    let ctl = match parse_grid_control(&mut args) {
        Ok(ctl) => ctl,
        Err(e) => {
            eprintln!("utility_risk: {e}");
            usage();
        }
    };
    let (cfg, out, telemetry) = match parse_cli_checked(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("utility_risk: {e}");
            std::process::exit(2);
        }
    };
    // Grids retained by the subcommand (if any) for the end-of-run timing
    // summary and the optional --telemetry artifact.
    let mut raw_grids: Vec<RawGrid> = Vec::new();
    // Panicked grid cells, reported (with a nonzero exit) at the end.
    let mut cell_errors: Vec<CellError> = Vec::new();

    match cmd.as_str() {
        "tables" => print!("{}", tables::all_tables()),
        "figure" => {
            let id = fig_id.expect("parsed above");
            let fig = build_figure(&id, &cfg);
            print!("{}", print_figure(&fig));
            let files = write_figure(&out, &fig).expect("write artifacts");
            progress::note(&format!(
                "wrote {} files under {}",
                files.len(),
                out.display()
            ));
        }
        "all" => {
            println!("{}", tables::all_tables());
            let ev = run_evaluation_ctl(&cfg, &ctl);
            cell_errors = ev.cell_errors().into_iter().cloned().collect();
            for fig in ev.paper_figures() {
                print!("{}", print_figure(&fig));
                write_figure(&out, &fig).expect("write artifacts");
            }
            std::fs::create_dir_all(&out).expect("mkdir");
            std::fs::write(
                out.join("report.md"),
                ccs_experiments::report_md::evaluation_report(&ev),
            )
            .expect("write report.md");
            ccs_experiments::EvaluationExport::from_evaluation(&ev)
                .write(&out.join("evaluation.json"))
                .expect("write evaluation.json");
            progress::note(&format!("artifacts under {}", out.display()));
            raw_grids = ev.raw_grids;
        }
        "ablations" => {
            let base = cfg.trace.generate(cfg.seed);
            for ablation in run_all_ablations(&base, cfg.seed, cfg.nodes) {
                println!("{}", ablation.render());
            }
            println!(
                "{}",
                ccs_experiments::ablation::car_comparison(&base, cfg.seed, cfg.nodes)
            );
        }
        "robustness" => {
            for econ in EconomicModel::ALL {
                for set in EstimateSet::ALL {
                    let r = replicate(econ, set, &cfg, &[1, 2, 3, 4, 5]);
                    println!("{}", r.render());
                    println!("ordering by mean: {}\n", r.ordering().join(" > "));
                }
            }
            for econ in EconomicModel::ALL {
                let s = ccs_experiments::across_trace_models(econ, EstimateSet::B, &cfg);
                println!("{}", s.render());
            }
            // Sensitivity of the integrated ordering to the wait
            // normalization (EXPERIMENTS.md deviation #1).
            for econ in EconomicModel::ALL {
                println!("=== wait-normalization sensitivity: {econ} / Set B ===");
                for (scheme, scores) in
                    ccs_experiments::wait_normalization_study(econ, EstimateSet::B, &cfg)
                {
                    let row: Vec<String> =
                        scores.iter().map(|(p, v)| format!("{p}={v:.3}")).collect();
                    println!("{:<34} {}", scheme, row.join("  "));
                }
                println!();
            }
        }
        "summary" => {
            let ev = run_evaluation_ctl(&cfg, &ctl);
            cell_errors = ev.cell_errors().into_iter().cloned().collect();
            for g in [&ev.commodity_a, &ev.commodity_b, &ev.bid_a, &ev.bid_b] {
                println!("\n== {} / {} ==", g.econ, g.set);
                print!("{:<12}", "policy");
                for o in Objective::ALL {
                    print!(" {:>13}", o.abbrev());
                }
                println!();
                for name in g.policy_names.clone() {
                    print!("{:<12}", name);
                    for o in Objective::ALL {
                        print!(" {:>13.3}", g.mean_performance(&name, o));
                    }
                    println!();
                }
            }
            raw_grids = ev.raw_grids;
        }
        "dominance" => {
            let ev = run_evaluation_ctl(&cfg, &ctl);
            cell_errors = ev.cell_errors().into_iter().cloned().collect();
            for g in [&ev.commodity_a, &ev.commodity_b, &ev.bid_a, &ev.bid_b] {
                let plot = g.integrated_plot(&Objective::ALL);
                println!(
                    "\n== {} / {} (integrated, all four objectives) ==",
                    g.econ, g.set
                );
                println!("{}", ccs_risk::report::dominance_table(&plot));
            }
            raw_grids = ev.raw_grids;
        }
        "workload" => {
            let base = cfg.trace.generate(cfg.seed);
            let jobs = apply_scenario(&base, &ccs_experiments::baseline(EstimateSet::B), cfg.seed);
            println!("{}\n", WorkloadSummary::compute(&jobs, cfg.nodes));
            println!("{}", ccs_workload::TraceHistograms::of(&base).render(48));
        }
        "trace" => {
            let spec = spec.expect("parsed above");
            let bundle = ccs_experiments::capture_cell(&spec, &cfg);
            let files = ccs_experiments::write_bundle(&bundle, &out).expect("write trace bundle");
            progress::note(&format!(
                "wrote {} files under {}",
                files.len(),
                out.display()
            ));
            let analysis =
                trace_report::analyze(&bundle.trace.records).expect("trace is causally ordered");
            println!(
                "== traced run: {} / {} / {} = {} / {} ==",
                bundle.manifest.econ,
                bundle.manifest.set,
                bundle.manifest.scenario,
                bundle.manifest.value,
                bundle.manifest.policy
            );
            print!("{}", analysis.render(Some(&bundle.manifest.metrics), 10));
            if !analysis.crosscheck(&bundle.manifest.metrics).is_empty() {
                eprintln!("trace cross-check FAILED: trace and runner metrics disagree");
                std::process::exit(1);
            }
        }
        _ => usage(),
    }

    if !raw_grids.is_empty() {
        progress::note_raw(&telemetry_report::slowest_cells_summary(&raw_grids, 5));
    }
    if let Some(path) = telemetry {
        TelemetryReport::collect(&raw_grids)
            .write(&path)
            .expect("write telemetry report");
        progress::note(&format!("telemetry report written to {}", path.display()));
    }
    if report_cell_errors(&cell_errors, &out) {
        std::process::exit(1);
    }
}
