//! `utility-risk` — the umbrella CLI over every reproduction artifact.
//!
//! ```text
//! utility_risk tables [--table N]          Tables I–VI
//! utility_risk figure <fig1|fig3..fig8>    one figure (+ artifacts)
//! utility_risk all                         everything (figures + tables + report)
//! utility_risk ablations                   ablation studies + CaR comparison
//! utility_risk robustness                  seed-replication study
//! utility_risk summary                     per-policy objective means
//! utility_risk dominance                   pairwise stochastic dominance
//! utility_risk workload                    synthetic-workload statistics
//! utility_risk trace                       one traced run + SLA report
//! utility_risk chaos                       seeded chaos soak (generate→run→check→shrink)
//! utility_risk query                       slice the columnar result store
//! utility_risk perf                        phase-attributed cost report from the store
//! utility_risk perf diff                   attribute a perf delta to phases and cells
//! ```
//!
//! Every subcommand accepts the shared flags `--quick`, `--quiet`,
//! `--jobs N`, `--seed S`, `--threads T`, `--replicas R` (seed replicas
//! per grid cell, fanned across the in-process pool; objectives become the
//! replica mean μ and `sigma_*` store columns record the spread),
//! `--out DIR`. `trace` additionally
//! takes `--econ commodity|bid`, `--set A|B`, `--scenario IDX`,
//! `--value IDX`, `--policy NAME`. Grid subcommands take the crash-safety
//! flags `--resume JOURNAL`, `--cell-budget N`, `--cell-wall-budget SECS`,
//! `--cell-event-budget N`, `--compact-journal`, plus the multi-process
//! supervisor flags `--workers N`, `--retries N`, `--backoff-ms MS`,
//! `--heartbeat-ms MS` (the latter three require `--workers`; results are
//! byte-identical to a single-process run). `chaos` takes `--rounds N`,
//! `--budget SECS`, `--max-events N` (per-replay watchdog budget). `query`
//! reads the `results_store.json` a grid run wrote (no simulation, no
//! JSONL) and takes `--store FILE`, the filters `--source grid|chaos`,
//! `--econ commodity|bid`, `--set A|B`, `--scenario SUBSTR`,
//! `--policy NAME`, plus `--select COLS`, `--sort-by COL`, `--desc`,
//! `--limit N`, `--summarize`. `perf` reads the same store (`--store FILE`,
//! `--top N`, `--by scenario|policy`); `perf diff` compares either two
//! stores (`--store NEW --baseline OLD`) or two `BENCH_kernel.json`
//! trendline entries (`--bench FILE [--from LABEL] [--to LABEL]`),
//! attributing the delta to phases and cell groups. Grid runs built with
//! `--features profile` additionally write `profile.folded` (collapsed
//! flamegraph stacks) under `--out`.

use ccs_chaos::{run_soak, SoakConfig};
use ccs_economy::EconomicModel;
use ccs_experiments::figures::{print_figure, write_figure};
use ccs_experiments::store::{SOURCE_CHAOS, SOURCE_GRID};
use ccs_experiments::{
    build_figure, parse_cli_checked, progress, replicate, run_all_ablations, run_evaluation_ctl,
    tables, telemetry_report, trace_report, write_atomic, CellError, EstimateSet, GridControl,
    Journal, Query, RawGrid, ResultStore, SupervisorConfig, TelemetryReport, TraceCellSpec,
    STORE_FILE,
};
use ccs_risk::Objective;
use ccs_simsvc::RunBudget;
use ccs_workload::{apply_scenario, WorkloadSummary};

fn usage() -> ! {
    eprintln!(
        "usage: utility_risk <tables|figure FIG|all|ablations|robustness|summary|dominance|workload|trace|chaos|query|perf> \
         [--quick] [--quiet] [--jobs N] [--seed S] [--threads T] [--replicas R] [--out DIR] [--telemetry FILE]\n\
         grid subcommands (all/summary/dominance) also take: [--resume JOURNAL] [--cell-budget N] \
         [--cell-wall-budget SECS] [--cell-event-budget N] [--compact-journal]\n\
         multi-process grid: [--workers N] [--remote HOST:PORT,…] [--retries N] [--backoff-ms MS] \
         [--heartbeat-ms MS] [--connect-timeout-ms MS]\n\
         serve-worker takes: --listen HOST:PORT (a remote TCP worker agent for --remote)\n\
         trace also takes: [--econ commodity|bid] [--set A|B] [--scenario IDX] [--value IDX] [--policy NAME]\n\
         chaos also takes: [--rounds N] [--budget SECS] [--max-events N]\n\
         query takes: [--store FILE] [--source grid|chaos] [--econ commodity|bid] [--set A|B] \
         [--scenario SUBSTR] [--policy NAME] [--select COL,COL,…] [--sort-by COL] [--desc] \
         [--limit N] [--summarize]\n\
         perf takes: [--store FILE] [--top N] [--by scenario|policy]\n\
         perf diff takes: --store NEW --baseline OLD | --bench FILE [--from LABEL] [--to LABEL]"
    );
    std::process::exit(2);
}

/// Strips the crash-safety flags (`--resume FILE`, `--cell-budget N`,
/// `--cell-wall-budget SECS`, `--cell-event-budget N`, `--compact-journal`)
/// and the multi-process supervisor flags (`--workers N`,
/// `--remote HOST:PORT,…`, `--retries N`, `--backoff-ms MS`,
/// `--heartbeat-ms MS`, `--connect-timeout-ms MS`) from the argument list
/// before the shared parser sees them. Returns the grid control plus
/// whether the journal should be compacted afterwards.
fn parse_grid_control(args: &mut Vec<String>) -> Result<(GridControl, bool), String> {
    let mut ctl = GridControl::default();
    let mut compact = false;
    let mut workers: Option<usize> = None;
    let mut remotes: Vec<String> = Vec::new();
    let mut retries: Option<u32> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut heartbeat_ms: Option<u64> = None;
    let mut connect_timeout_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--workers requires a count")?;
                workers = Some(
                    v.parse()
                        .map_err(|_| format!("--workers: expected a count, got {v:?}"))?,
                );
                args.drain(i..i + 2);
            }
            "--remote" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--remote requires host:port[,host:port,…]")?;
                remotes.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(String::from),
                );
                args.drain(i..i + 2);
            }
            "--connect-timeout-ms" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--connect-timeout-ms requires milliseconds")?;
                connect_timeout_ms = Some(v.parse().map_err(|_| {
                    format!("--connect-timeout-ms: expected milliseconds, got {v:?}")
                })?);
                args.drain(i..i + 2);
            }
            "--retries" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--retries requires a count")?;
                retries = Some(
                    v.parse()
                        .map_err(|_| format!("--retries: expected a count, got {v:?}"))?,
                );
                args.drain(i..i + 2);
            }
            "--backoff-ms" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--backoff-ms requires milliseconds")?;
                backoff_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--backoff-ms: expected milliseconds, got {v:?}"))?,
                );
                args.drain(i..i + 2);
            }
            "--heartbeat-ms" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--heartbeat-ms requires milliseconds")?;
                heartbeat_ms =
                    Some(v.parse().map_err(|_| {
                        format!("--heartbeat-ms: expected milliseconds, got {v:?}")
                    })?);
                args.drain(i..i + 2);
            }
            "--resume" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--resume requires a journal path")?;
                ctl.journal = Some(std::path::PathBuf::from(v));
                args.drain(i..i + 2);
            }
            "--cell-budget" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--cell-budget requires a count")?;
                ctl.cell_budget = Some(
                    v.parse()
                        .map_err(|_| format!("--cell-budget: expected a count, got {v:?}"))?,
                );
                args.drain(i..i + 2);
            }
            "--cell-wall-budget" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--cell-wall-budget requires seconds")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--cell-wall-budget: expected seconds, got {v:?}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!(
                        "--cell-wall-budget: must be finite and positive, got {v}"
                    ));
                }
                ctl.cell_wall_budget = Some(secs);
                args.drain(i..i + 2);
            }
            "--cell-event-budget" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--cell-event-budget requires a count")?;
                ctl.cell_event_budget =
                    Some(v.parse().map_err(|_| {
                        format!("--cell-event-budget: expected a count, got {v:?}")
                    })?);
                args.drain(i..i + 2);
            }
            "--compact-journal" => {
                compact = true;
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    if compact && ctl.journal.is_none() {
        return Err("--compact-journal requires --resume JOURNAL".to_string());
    }
    if workers.is_some() || !remotes.is_empty() {
        let d = SupervisorConfig::default();
        // `--remote` without `--workers` means a purely remote grid: no
        // local children, all shards dialed out.
        let sup = SupervisorConfig {
            workers: workers.unwrap_or(0),
            remotes,
            retries: retries.unwrap_or(d.retries),
            backoff_ms: backoff_ms.unwrap_or(d.backoff_ms),
            heartbeat_ms: heartbeat_ms.unwrap_or(d.heartbeat_ms),
            connect_timeout_ms: connect_timeout_ms.unwrap_or(d.connect_timeout_ms),
            worker_bin: None,
        };
        sup.validate().map_err(|e| e.to_string())?;
        ctl.supervisor = Some(sup);
    } else {
        for (flag, set) in [
            ("--retries", retries.is_some()),
            ("--backoff-ms", backoff_ms.is_some()),
            ("--heartbeat-ms", heartbeat_ms.is_some()),
            ("--connect-timeout-ms", connect_timeout_ms.is_some()),
        ] {
            if set {
                return Err(format!(
                    "{flag} requires --workers N or --remote HOST:PORT (supervised grid mode)"
                ));
            }
        }
    }
    Ok((ctl, compact))
}

/// The `chaos` subcommand's own flags, stripped before the shared parser.
struct ChaosArgs {
    rounds: u32,
    wall_secs: f64,
    max_events: u64,
}

fn parse_chaos_args(args: &mut Vec<String>) -> Result<ChaosArgs, String> {
    let defaults = SoakConfig::default();
    let mut chaos = ChaosArgs {
        rounds: defaults.rounds,
        wall_secs: defaults.budget.max_wall_secs.unwrap_or(30.0),
        max_events: defaults.budget.max_events.unwrap_or(5_000_000),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--rounds requires a count")?;
                chaos.rounds = v
                    .parse()
                    .map_err(|_| format!("--rounds: expected a count, got {v:?}"))?;
                args.drain(i..i + 2);
            }
            "--budget" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--budget requires seconds")?;
                chaos.wall_secs = v
                    .parse()
                    .map_err(|_| format!("--budget: expected seconds, got {v:?}"))?;
                if !chaos.wall_secs.is_finite() || chaos.wall_secs <= 0.0 {
                    return Err(format!("--budget: must be finite and positive, got {v}"));
                }
                args.drain(i..i + 2);
            }
            "--max-events" => {
                let v = args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--max-events requires a count")?;
                chaos.max_events = v
                    .parse()
                    .map_err(|_| format!("--max-events: expected a count, got {v:?}"))?;
                args.drain(i..i + 2);
            }
            _ => i += 1,
        }
    }
    Ok(chaos)
}

/// The `query` subcommand's own flags, stripped before the shared parser.
/// Returns the parsed query plus an optional explicit store path
/// (defaulting to `OUT/results_store.json` otherwise).
fn parse_query_args(args: &mut Vec<String>) -> Result<(Query, Option<std::path::PathBuf>), String> {
    let mut q = Query::default();
    let mut store_path = None;
    let value_of = |args: &mut Vec<String>, i: usize, flag: &str| -> Result<String, String> {
        let v = args
            .get(i + 1)
            .cloned()
            .ok_or(format!("{flag} requires a value"))?;
        args.drain(i..i + 2);
        Ok(v)
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--store" => {
                store_path = Some(std::path::PathBuf::from(value_of(args, i, "--store")?));
            }
            "--source" => {
                q.source = Some(match value_of(args, i, "--source")?.as_str() {
                    "grid" => SOURCE_GRID,
                    "chaos" => SOURCE_CHAOS,
                    other => return Err(format!("--source: expected grid|chaos, got {other:?}")),
                });
            }
            "--econ" => {
                q.econ = Some(match value_of(args, i, "--econ")?.as_str() {
                    "commodity" => EconomicModel::CommodityMarket,
                    "bid" => EconomicModel::BidBased,
                    other => return Err(format!("--econ: expected commodity|bid, got {other:?}")),
                });
            }
            "--set" => {
                q.set = Some(match value_of(args, i, "--set")?.as_str() {
                    "A" | "a" => EstimateSet::A,
                    "B" | "b" => EstimateSet::B,
                    other => return Err(format!("--set: expected A|B, got {other:?}")),
                });
            }
            "--scenario" => q.scenario_contains = Some(value_of(args, i, "--scenario")?),
            "--policy" => q.policy = Some(value_of(args, i, "--policy")?),
            "--select" => {
                q.select = value_of(args, i, "--select")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--sort-by" => q.sort_by = Some(value_of(args, i, "--sort-by")?),
            "--desc" => {
                q.descending = true;
                args.remove(i);
            }
            "--limit" => {
                let v = value_of(args, i, "--limit")?;
                q.limit = Some(
                    v.parse()
                        .map_err(|_| format!("--limit: expected a count, got {v:?}"))?,
                );
            }
            "--summarize" => {
                q.summarize = true;
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    Ok((q, store_path))
}

/// The `perf` subcommand's own flags, stripped before the shared parser.
/// `diff` is set by the positional `diff` word after `perf`.
struct PerfArgs {
    diff: bool,
    store: Option<std::path::PathBuf>,
    baseline: Option<std::path::PathBuf>,
    bench: Option<std::path::PathBuf>,
    from: Option<String>,
    to: Option<String>,
    top: usize,
    by: ccs_experiments::perf::GroupBy,
}

fn parse_perf_args(diff: bool, args: &mut Vec<String>) -> Result<PerfArgs, String> {
    let mut p = PerfArgs {
        diff,
        store: None,
        baseline: None,
        bench: None,
        from: None,
        to: None,
        top: 10,
        by: ccs_experiments::perf::GroupBy::Scenario,
    };
    let value_of = |args: &mut Vec<String>, i: usize, flag: &str| -> Result<String, String> {
        let v = args
            .get(i + 1)
            .cloned()
            .ok_or(format!("{flag} requires a value"))?;
        args.drain(i..i + 2);
        Ok(v)
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--store" => {
                p.store = Some(std::path::PathBuf::from(value_of(args, i, "--store")?));
            }
            "--baseline" => {
                p.baseline = Some(std::path::PathBuf::from(value_of(args, i, "--baseline")?));
            }
            "--bench" => {
                p.bench = Some(std::path::PathBuf::from(value_of(args, i, "--bench")?));
            }
            "--from" => p.from = Some(value_of(args, i, "--from")?),
            "--to" => p.to = Some(value_of(args, i, "--to")?),
            "--top" => {
                let v = value_of(args, i, "--top")?;
                p.top = v
                    .parse()
                    .map_err(|_| format!("--top: expected a count, got {v:?}"))?;
            }
            "--by" => {
                p.by = ccs_experiments::perf::GroupBy::parse(&value_of(args, i, "--by")?)?;
            }
            _ => i += 1,
        }
    }
    if p.diff && p.bench.is_none() && p.baseline.is_none() {
        return Err("perf diff needs --baseline OLD_STORE or --bench TRENDLINE".to_string());
    }
    if !p.diff && (p.baseline.is_some() || p.bench.is_some() || p.from.is_some() || p.to.is_some())
    {
        return Err("--baseline/--bench/--from/--to only apply to perf diff".to_string());
    }
    Ok(p)
}

/// Loads a result store or exits 1 with a pointer at how to produce one.
fn load_store_or_die(path: &std::path::Path, context: &str) -> ResultStore {
    match ResultStore::load(path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!(
                "utility_risk {context}: {e}\n(run `utility_risk summary` or `all` first to \
                 produce the store, or point the flag at one)"
            );
            std::process::exit(1);
        }
    }
}

/// Runs `utility_risk perf` / `perf diff` against already-written artifacts
/// (no simulation) and exits.
fn run_perf(p: &PerfArgs, out: &std::path::Path) -> ! {
    if !p.diff {
        let path = p.store.clone().unwrap_or_else(|| out.join(STORE_FILE));
        let store = load_store_or_die(&path, "perf");
        print!("{}", ccs_experiments::perf::report(&store, p.top, p.by));
        std::process::exit(0);
    }
    let result = if let Some(bench) = &p.bench {
        match std::fs::read_to_string(bench) {
            Ok(text) => {
                ccs_experiments::perf::diff_bench(&text, p.from.as_deref(), p.to.as_deref())
            }
            Err(e) => Err(format!("cannot read {}: {e}", bench.display())),
        }
    } else {
        let new_path = p.store.clone().unwrap_or_else(|| out.join(STORE_FILE));
        let base_path = p.baseline.clone().expect("checked at parse time");
        let baseline = load_store_or_die(&base_path, "perf diff");
        let new = load_store_or_die(&new_path, "perf diff");
        ccs_experiments::perf::diff_stores(&baseline, &new)
    };
    match result {
        Ok(text) => {
            print!("{text}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("utility_risk perf diff: {e}");
            std::process::exit(1);
        }
    }
}

/// Builds the columnar result store of a finished evaluation and writes it
/// atomically under `out`, next to the figure artifacts.
fn write_store(
    ev: &ccs_experiments::Evaluation,
    cfg: &ccs_experiments::ExperimentConfig,
    out: &std::path::Path,
) {
    let store = ResultStore::from_evaluation(ev, cfg);
    let path = store.save(out).expect("write results store");
    progress::note(&format!(
        "result store: {} row(s) in {}",
        store.len(),
        path.display()
    ));
}

/// Runs the chaos soak: seeded generate→run→check→shrink rounds, a
/// `chaos_report.json` artifact, and one replayable reproducer JSON per
/// finding. Exits 1 when any round found a violation, budget trip, or
/// panic.
fn run_chaos(chaos: &ChaosArgs, seed: u64, out: &std::path::Path) -> ! {
    let cfg = SoakConfig {
        seed,
        rounds: chaos.rounds,
        budget: RunBudget {
            max_wall_secs: Some(chaos.wall_secs),
            max_events: Some(chaos.max_events),
        },
    };
    progress::note(&format!(
        "chaos soak: seed {} / {} rounds / budget {}s, {} events per replay",
        cfg.seed, cfg.rounds, chaos.wall_secs, chaos.max_events
    ));
    let report = run_soak(&cfg, |round, case, outcome| {
        if let Some(sig) = outcome.signature() {
            eprintln!(
                "chaos: round {round} FAILED ({sig}) — case seed {}, shrinking…",
                case.seed
            );
        }
    });
    let json = serde_json::to_string_pretty(&report).expect("soak report serialises");
    write_atomic(&out.join("chaos_report.json"), json.as_bytes()).expect("write chaos_report.json");
    for finding in &report.findings {
        let path = out.join(format!("chaos_reproducer_round{}.json", finding.round));
        write_atomic(&path, finding.minimized.to_json().as_bytes()).expect("write reproducer");
        eprintln!(
            "chaos: round {} minimal reproducer ({}) written to {}",
            finding.round,
            finding.signature,
            path.display()
        );
    }
    // Soak findings land as chaos-source rows in the result store, so a
    // later `utility_risk query --source chaos` surfaces them alongside
    // (or without) the grid cells of a previous run in the same out dir.
    if !report.findings.is_empty() {
        let store_path = out.join(STORE_FILE);
        let mut store = if store_path.exists() {
            ResultStore::load(&store_path).unwrap_or_else(|e| {
                eprintln!("chaos: replacing unreadable store ({e})");
                ResultStore::new()
            })
        } else {
            ResultStore::new()
        };
        store.append_chaos(&report);
        store.save(out).expect("write results store");
        progress::note(&format!(
            "chaos: {} finding(s) appended to {}",
            report.findings.len(),
            store_path.display()
        ));
    }
    println!(
        "chaos soak: {}/{} rounds clean, {} events simulated, {} finding(s); report: {}",
        report.clean,
        report.rounds,
        report.events,
        report.findings.len(),
        out.join("chaos_report.json").display()
    );
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// Reports failed cells (panics, budget trips, invariant violations):
/// atomically writes `cell_errors.json` under `out` and prints each error.
/// Returns true when there was anything to report (the process should then
/// exit nonzero once the telemetry artifacts are flushed).
fn report_cell_errors(errors: &[CellError], out: &std::path::Path) -> bool {
    if errors.is_empty() {
        return false;
    }
    let path = out.join("cell_errors.json");
    let json = serde_json::to_string_pretty(&errors.to_vec()).expect("cell errors serialise");
    write_atomic(&path, json.as_bytes()).expect("write cell_errors.json");
    for e in errors {
        eprintln!("utility_risk: {e}");
    }
    eprintln!(
        "utility_risk: {} grid cell(s) failed — details in {} (rerun with --resume to retry \
         only the missing cells)",
        errors.len(),
        path.display()
    );
    true
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The hidden `worker` subcommand: how the supervisor re-execs this
    // binary as a grid worker (see `ccs_experiments::supervisor`). It
    // speaks length-prefixed JSON frames on stdin/stdout and never
    // returns, so it must run before any flag parsing.
    if args.first().map(String::as_str) == Some("worker") {
        ccs_experiments::worker::worker_main();
    }
    // `serve-worker` — the remote TCP worker agent the supervisor's
    // `--remote` flag dials. Long-lived: one protocol session per
    // accepted connection, until a clean Shutdown frame. Never returns.
    if args.first().map(String::as_str) == Some("serve-worker") {
        let listen = match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("--listen"), Some(addr)) if args.len() == 3 => addr.clone(),
            _ => {
                eprintln!("utility_risk serve-worker: requires exactly --listen HOST:PORT");
                std::process::exit(2);
            }
        };
        ccs_experiments::worker::serve_worker_main(&listen);
    }
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    // `figure` consumes one positional argument before the shared flags.
    let fig_id = if cmd == "figure" {
        if args.is_empty() || args[0].starts_with("--") {
            usage();
        }
        Some(args.remove(0))
    } else {
        None
    };
    // `trace` strips its cell-selection flags before the shared parser
    // (which panics on anything it does not know).
    let spec = if cmd == "trace" {
        match TraceCellSpec::parse_args(&mut args) {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("utility_risk trace: {e}");
                usage();
            }
        }
    } else {
        None
    };
    // `chaos` strips its soak flags before the shared parser.
    let chaos_args = if cmd == "chaos" {
        match parse_chaos_args(&mut args) {
            Ok(chaos) => Some(chaos),
            Err(e) => {
                eprintln!("utility_risk chaos: {e}");
                usage();
            }
        }
    } else {
        None
    };
    // `perf` consumes an optional positional `diff`, then strips its own
    // flags before the shared parser.
    let perf_args = if cmd == "perf" {
        let diff = args.first().map(|a| a == "diff").unwrap_or(false);
        if diff {
            args.remove(0);
        }
        match parse_perf_args(diff, &mut args) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("utility_risk perf: {e}");
                usage();
            }
        }
    } else {
        None
    };
    // `query` strips its store/filter flags before the shared parser.
    let query_args = if cmd == "query" {
        match parse_query_args(&mut args) {
            Ok(parsed) => Some(parsed),
            Err(e) => {
                eprintln!("utility_risk query: {e}");
                usage();
            }
        }
    } else {
        None
    };
    let (ctl, compact_journal) = match parse_grid_control(&mut args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("utility_risk: {e}");
            usage();
        }
    };
    let (cfg, out, telemetry) = match parse_cli_checked(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("utility_risk: {e}");
            std::process::exit(2);
        }
    };
    // Grids retained by the subcommand (if any) for the end-of-run timing
    // summary and the optional --telemetry artifact.
    let mut raw_grids: Vec<RawGrid> = Vec::new();
    // Panicked grid cells, reported (with a nonzero exit) at the end.
    let mut cell_errors: Vec<CellError> = Vec::new();

    match cmd.as_str() {
        "tables" => print!("{}", tables::all_tables()),
        "figure" => {
            let id = fig_id.expect("parsed above");
            let fig = build_figure(&id, &cfg);
            print!("{}", print_figure(&fig));
            let files = write_figure(&out, &fig).expect("write artifacts");
            progress::note(&format!(
                "wrote {} files under {}",
                files.len(),
                out.display()
            ));
        }
        "all" => {
            println!("{}", tables::all_tables());
            let ev = run_evaluation_ctl(&cfg, &ctl);
            cell_errors = ev.cell_errors().into_iter().cloned().collect();
            for fig in ev.paper_figures() {
                print!("{}", print_figure(&fig));
                write_figure(&out, &fig).expect("write artifacts");
            }
            write_atomic(
                &out.join("report.md"),
                ccs_experiments::report_md::evaluation_report(&ev).as_bytes(),
            )
            .expect("write report.md");
            ccs_experiments::EvaluationExport::from_evaluation(&ev)
                .write(&out.join("evaluation.json"))
                .expect("write evaluation.json");
            write_store(&ev, &cfg, &out);
            progress::note(&format!("artifacts under {}", out.display()));
            raw_grids = ev.raw_grids;
        }
        "ablations" => {
            let base = cfg.trace.generate(cfg.seed);
            for ablation in run_all_ablations(&base, cfg.seed, cfg.nodes) {
                println!("{}", ablation.render());
            }
            println!(
                "{}",
                ccs_experiments::ablation::car_comparison(&base, cfg.seed, cfg.nodes)
            );
        }
        "robustness" => {
            for econ in EconomicModel::ALL {
                for set in EstimateSet::ALL {
                    let r = replicate(econ, set, &cfg, &[1, 2, 3, 4, 5]);
                    println!("{}", r.render());
                    println!("ordering by mean: {}\n", r.ordering().join(" > "));
                }
            }
            for econ in EconomicModel::ALL {
                let s = ccs_experiments::across_trace_models(econ, EstimateSet::B, &cfg);
                println!("{}", s.render());
            }
            // Sensitivity of the integrated ordering to the wait
            // normalization (EXPERIMENTS.md deviation #1).
            for econ in EconomicModel::ALL {
                println!("=== wait-normalization sensitivity: {econ} / Set B ===");
                for (scheme, scores) in
                    ccs_experiments::wait_normalization_study(econ, EstimateSet::B, &cfg)
                {
                    let row: Vec<String> =
                        scores.iter().map(|(p, v)| format!("{p}={v:.3}")).collect();
                    println!("{:<34} {}", scheme, row.join("  "));
                }
                println!();
            }
        }
        "summary" => {
            let ev = run_evaluation_ctl(&cfg, &ctl);
            cell_errors = ev.cell_errors().into_iter().cloned().collect();
            for g in [&ev.commodity_a, &ev.commodity_b, &ev.bid_a, &ev.bid_b] {
                println!("\n== {} / {} ==", g.econ, g.set);
                print!("{:<12}", "policy");
                for o in Objective::ALL {
                    print!(" {:>13}", o.abbrev());
                }
                println!();
                for name in g.policy_names.clone() {
                    print!("{:<12}", name);
                    for o in Objective::ALL {
                        print!(" {:>13.3}", g.mean_performance(&name, o));
                    }
                    println!();
                }
            }
            write_store(&ev, &cfg, &out);
            raw_grids = ev.raw_grids;
        }
        "dominance" => {
            let ev = run_evaluation_ctl(&cfg, &ctl);
            cell_errors = ev.cell_errors().into_iter().cloned().collect();
            for g in [&ev.commodity_a, &ev.commodity_b, &ev.bid_a, &ev.bid_b] {
                let plot = g.integrated_plot(&Objective::ALL);
                println!(
                    "\n== {} / {} (integrated, all four objectives) ==",
                    g.econ, g.set
                );
                println!("{}", ccs_risk::report::dominance_table(&plot));
            }
            write_store(&ev, &cfg, &out);
            raw_grids = ev.raw_grids;
        }
        "workload" => {
            let base = cfg.trace.generate(cfg.seed);
            let jobs = apply_scenario(&base, &ccs_experiments::baseline(EstimateSet::B), cfg.seed);
            println!("{}\n", WorkloadSummary::compute(&jobs, cfg.nodes));
            println!("{}", ccs_workload::TraceHistograms::of(&base).render(48));
        }
        "chaos" => {
            let chaos = chaos_args.expect("parsed above");
            run_chaos(&chaos, cfg.seed, &out);
        }
        "perf" => {
            let p = perf_args.expect("parsed above");
            run_perf(&p, &out);
        }
        "query" => {
            let (q, store_path) = query_args.expect("parsed above");
            let path = store_path.unwrap_or_else(|| out.join(STORE_FILE));
            let store = match ResultStore::load(&path) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!(
                        "utility_risk query: {e}\n(run `utility_risk summary` or `all` first \
                         to produce the store, or point --store at one)"
                    );
                    std::process::exit(1);
                }
            };
            match store.query(&q) {
                Ok(res) => print!("{}", res.render()),
                Err(e) => {
                    eprintln!("utility_risk query: {e}");
                    std::process::exit(2);
                }
            }
        }
        "trace" => {
            let spec = spec.expect("parsed above");
            let bundle = ccs_experiments::capture_cell(&spec, &cfg);
            let files = ccs_experiments::write_bundle(&bundle, &out).expect("write trace bundle");
            progress::note(&format!(
                "wrote {} files under {}",
                files.len(),
                out.display()
            ));
            let analysis =
                trace_report::analyze(&bundle.trace.records).expect("trace is causally ordered");
            println!(
                "== traced run: {} / {} / {} = {} / {} ==",
                bundle.manifest.econ,
                bundle.manifest.set,
                bundle.manifest.scenario,
                bundle.manifest.value,
                bundle.manifest.policy
            );
            print!("{}", analysis.render(Some(&bundle.manifest.metrics), 10));
            if !analysis.crosscheck(&bundle.manifest.metrics).is_empty() {
                eprintln!("trace cross-check FAILED: trace and runner metrics disagree");
                std::process::exit(1);
            }
        }
        _ => usage(),
    }

    if compact_journal {
        let path = ctl.journal.as_deref().expect("checked at parse time");
        match Journal::compact(path) {
            // Reported even under --quiet: these stats are the whole point
            // of asking for --compact-journal.
            Ok((read, kept)) => eprintln!(
                "journal compacted: {read} line(s) -> {kept} record(s) in {}",
                path.display()
            ),
            Err(e) => {
                eprintln!(
                    "utility_risk: cannot compact journal {}: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }
    if !raw_grids.is_empty() {
        progress::note_raw(&telemetry_report::slowest_cells_summary(&raw_grids, 5));
        // Phase-profiled builds additionally export the merged profile as
        // collapsed flamegraph stacks (inferno / flamegraph.pl / speedscope
        // all read the folded format directly).
        let mut merged = ccs_telemetry::profile::ProfileSnapshot::default();
        for g in &raw_grids {
            merged.merge(&g.profile);
        }
        if !merged.is_empty() {
            let path = out.join("profile.folded");
            write_atomic(&path, merged.folded().as_bytes()).expect("write profile.folded");
            progress::note(&format!(
                "phase profile (folded stacks): {}",
                path.display()
            ));
        }
    }
    if let Some(path) = telemetry {
        TelemetryReport::collect(&raw_grids)
            .write(&path)
            .expect("write telemetry report");
        progress::note(&format!("telemetry report written to {}", path.display()));
    }
    if report_cell_errors(&cell_errors, &out) {
        std::process::exit(1);
    }
}
