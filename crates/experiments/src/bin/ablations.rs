//! Runs the ablation studies of DESIGN.md (admission control, backfilling,
//! deadline escalation, Libra+$ β sweep, FirstReward slack threshold).

use ccs_experiments::run_all_ablations;

fn main() {
    let (cfg, _) =
        ccs_experiments::parse_cli_or_exit(&std::env::args().skip(1).collect::<Vec<_>>());
    let base = cfg.trace.generate(cfg.seed);
    for ablation in run_all_ablations(&base, cfg.seed, cfg.nodes) {
        println!("{}", ablation.render());
    }
    println!(
        "{}",
        ccs_experiments::ablation::car_comparison(&base, cfg.seed, cfg.nodes)
    );
}
