//! Reproduces paper Figure 1 (the sample risk analysis plot) and the
//! derived Tables II–IV. Pure — no simulation involved.

use ccs_experiments::figures::{figure1, print_figure, write_figure};
use ccs_experiments::tables;

fn main() {
    let (_, out) =
        ccs_experiments::parse_cli_or_exit(&std::env::args().skip(1).collect::<Vec<_>>());
    let fig = figure1();
    print!("{}", print_figure(&fig));
    println!();
    println!("=== Table II ===\n{}", tables::table2());
    println!(
        "=== Table III (ranking by best performance) ===\n{}",
        tables::table3()
    );
    println!(
        "=== Table IV (ranking by best volatility) ===\n{}",
        tables::table4()
    );
    let files = write_figure(&out, &fig).expect("write figure artifacts");
    eprintln!("wrote {} files under {}", files.len(), out.display());
}
