//! Phase-attributed performance reporting and regression explainability.
//!
//! The result store's schema-v2 cost vector (see [`crate::store`]) records,
//! per grid cell, where its wall time went: one self-time column per
//! profiled phase plus events/sec and peak queue depth. This module turns
//! those columns into the `utility_risk perf` surfaces:
//!
//! * [`report`] — top-N costliest cells with their dominant phase, plus the
//!   phase breakdown grouped by scenario or policy;
//! * [`diff_stores`] — compares two stores cell-by-cell and attributes the
//!   wall-time delta to phases and cell groups, so "the bench gate
//!   tripped" becomes "PS recompute got slower on Libra under Failure
//!   Rate";
//! * [`diff_bench`] — compares two entries of the `BENCH_kernel.json`
//!   trendline by label (parsed loosely, since depending on the bench
//!   crate here would be a dependency cycle).
//!
//! All output is line-oriented plain text: stable enough for CI goldens to
//! grep, readable enough for a terminal.

use crate::grid::PHASE_LEAVES;
use crate::store::{ResultStore, SOURCE_GRID};
use std::fmt::Write as _;

/// Grouping axis for the phase-breakdown section of [`report`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupBy {
    /// One breakdown row per scenario label.
    Scenario,
    /// One breakdown row per policy name.
    Policy,
}

impl GroupBy {
    /// Parses the `--by` CLI argument.
    pub fn parse(s: &str) -> Result<GroupBy, String> {
        match s {
            "scenario" => Ok(GroupBy::Scenario),
            "policy" => Ok(GroupBy::Policy),
            other => Err(format!("--by {other:?} (expected scenario or policy)")),
        }
    }
}

/// Nanoseconds rendered at a human scale (`412ns`, `3.2us`, `8.71ms`,
/// `1.204s`) — compact in tables, unambiguous in diffs.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

/// Signed percent change from `old` to `new`; `+inf%` when growing from 0.
fn fmt_pct_delta(old: f64, new: f64) -> String {
    if old <= 0.0 {
        if new <= 0.0 {
            "+0.0%".to_string()
        } else {
            "+inf%".to_string()
        }
    } else {
        format!("{:+.1}%", 100.0 * (new - old) / old)
    }
}

/// The grid rows of `store`, as indices.
fn grid_rows(store: &ResultStore) -> Vec<usize> {
    (0..store.len())
        .filter(|&i| store.columns.source[i] == SOURCE_GRID)
        .collect()
}

/// True when any phase column of any row is non-zero — i.e. the producing
/// run was built with the `profile` feature.
fn is_profiled(store: &ResultStore) -> bool {
    let c = &store.columns;
    PHASE_LEAVES.iter().enumerate().any(|(k, _)| {
        grid_rows(store)
            .iter()
            .any(|&i| c.cell_cost(i).phase_ns[k] > 0)
    })
}

/// Worker attribution for a row: `w3` for a cell run by worker 3 (a
/// thread in-process, an OS process under the supervisor), `w-` when
/// unattributed (chaos rows, cells restored from pre-v3 journals).
fn worker_tag(worker: u64) -> String {
    if worker == 0 {
        "w-".to_string()
    } else {
        format!("w{worker}")
    }
}

fn econ_set_tag(store: &ResultStore, i: usize) -> String {
    let c = &store.columns;
    let econ = if c.econ[i] == 0 { "commodity" } else { "bid" };
    let set = match c.set[i] {
        0 => "A",
        1 => "B",
        _ => "-",
    };
    format!("{econ}/{set}")
}

/// Renders the `utility_risk perf` report: store totals, the `top`
/// costliest cells (by wall seconds) with their dominant phase, and the
/// per-phase self-time breakdown grouped along `group_by`.
pub fn report(store: &ResultStore, top: usize, group_by: GroupBy) -> String {
    let c = &store.columns;
    let rows = grid_rows(store);
    let profiled = is_profiled(store);

    let total_secs: f64 = rows.iter().map(|&i| c.secs[i]).sum();
    let total_events: u64 = rows.iter().map(|&i| c.events[i]).sum();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "perf report: {} grid cells, {total_secs:.3}s simulated wall time, {total_events} events",
        rows.len()
    );
    let _ = writeln!(
        s,
        "profiling: {}",
        if profiled {
            "on (phase self-times recorded)"
        } else {
            "off (ns_* columns are zero; re-run with --features profile)"
        }
    );

    // Top-N costliest cells.
    let mut by_cost: Vec<usize> = rows.clone();
    by_cost.sort_by(|&a, &b| c.secs[b].total_cmp(&c.secs[a]));
    by_cost.truncate(top);
    let _ = writeln!(s, "top {} costliest cells:", by_cost.len());
    for &i in &by_cost {
        let _ = write!(
            s,
            "  {:>8.3}s  {:>9.0} ev/s  depth {:>4}  {:>3}  {}  {}[{}]  {}",
            c.secs[i],
            c.events_per_sec[i],
            c.peak_queue_depth[i],
            worker_tag(c.worker[i]),
            econ_set_tag(store, i),
            store.scenarios[c.scenario[i] as usize],
            c.value_idx[i],
            store.policies[c.policy[i] as usize],
        );
        let cost = c.cell_cost(i);
        if let Some((phase, ns)) = cost.top_phase() {
            let pct = 100.0 * ns as f64 / cost.total_phase_ns().max(1) as f64;
            let _ = write!(s, "  [{phase} {pct:.0}%]");
        }
        s.push('\n');
    }

    // Phase breakdown, grouped.
    let axis = match group_by {
        GroupBy::Scenario => "scenario",
        GroupBy::Policy => "policy",
    };
    let _ = writeln!(s, "phase self-time by {axis}:");
    let group_label = |i: usize| -> String {
        match group_by {
            GroupBy::Scenario => store.scenarios[c.scenario[i] as usize].clone(),
            GroupBy::Policy => store.policies[c.policy[i] as usize].clone(),
        }
    };
    // (label, per-phase ns, secs) in first-appearance order, then sorted by
    // total phase time, descending.
    let mut groups: Vec<(String, [u64; 6], f64)> = Vec::new();
    for &i in &rows {
        let label = group_label(i);
        let cost = c.cell_cost(i);
        match groups.iter_mut().find(|(l, _, _)| *l == label) {
            Some((_, ns, secs)) => {
                for (k, &v) in cost.phase_ns.iter().enumerate() {
                    ns[k] = ns[k].wrapping_add(v);
                }
                *secs += c.secs[i];
            }
            None => groups.push((label, cost.phase_ns, c.secs[i])),
        }
    }
    groups.sort_by(|a, b| {
        let ta: u64 = a.1.iter().sum();
        let tb: u64 = b.1.iter().sum();
        tb.cmp(&ta).then_with(|| a.0.cmp(&b.0))
    });
    for (label, ns, secs) in &groups {
        let total: u64 = ns.iter().sum();
        let _ = write!(
            s,
            "  {label}: {:.3}s wall, {} profiled",
            secs,
            fmt_ns(total)
        );
        if total > 0 {
            for (k, leaf) in PHASE_LEAVES.iter().enumerate() {
                if ns[k] > 0 {
                    let pct = 100.0 * ns[k] as f64 / total as f64;
                    let _ = write!(s, "  {leaf} {pct:.0}%");
                }
            }
        }
        s.push('\n');
    }
    s
}

/// A grid cell's identity across two stores: the key [`diff_stores`]
/// matches rows on.
type RowKey = (u8, u8, String, u8, String);

fn row_key(store: &ResultStore, i: usize) -> RowKey {
    let c = &store.columns;
    (
        c.econ[i],
        c.set[i],
        store.scenarios[c.scenario[i] as usize].clone(),
        c.value_idx[i],
        store.policies[c.policy[i] as usize].clone(),
    )
}

/// Compares two result stores cell-by-cell and attributes the wall-time
/// delta: per-phase self-time deltas over all matched cells (flagging the
/// largest regression), then the worst-regressing (policy, scenario) cell
/// group by wall-seconds ratio with its dominant phase delta. Errors when
/// no cells match.
pub fn diff_stores(baseline: &ResultStore, new: &ResultStore) -> Result<String, String> {
    let bc = &baseline.columns;
    let nc = &new.columns;
    // Key → baseline row index. Grid keys are unique per store (one row
    // per cell); later duplicates (re-appended evaluations) win, matching
    // "latest state" semantics.
    let mut base_by_key: Vec<(RowKey, usize)> = Vec::new();
    for i in grid_rows(baseline) {
        let key = row_key(baseline, i);
        match base_by_key.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => *slot = i,
            None => base_by_key.push((key, i)),
        }
    }
    let mut matched: Vec<(usize, usize)> = Vec::new(); // (baseline row, new row)
    let mut only_new = 0usize;
    for i in grid_rows(new) {
        let key = row_key(new, i);
        match base_by_key.iter().find(|(k, _)| *k == key) {
            Some(&(_, b)) => matched.push((b, i)),
            None => only_new += 1,
        }
    }
    if matched.is_empty() {
        return Err("perf diff: no cells in common between the two stores".to_string());
    }
    let only_base = base_by_key.len().saturating_sub(matched.len());

    let mut s = String::new();
    let _ = writeln!(
        s,
        "perf diff: {} matched cells ({only_base} only in baseline, {only_new} only in new)",
        matched.len()
    );
    let base_secs: f64 = matched.iter().map(|&(b, _)| bc.secs[b]).sum();
    let new_secs: f64 = matched.iter().map(|&(_, n)| nc.secs[n]).sum();
    let _ = writeln!(
        s,
        "total wall: {base_secs:.3}s -> {new_secs:.3}s ({})",
        fmt_pct_delta(base_secs, new_secs)
    );

    // Per-phase self-time deltas across all matched cells.
    let mut base_ns = [0u64; 6];
    let mut new_ns = [0u64; 6];
    for &(b, n) in &matched {
        let bcost = bc.cell_cost(b);
        let ncost = nc.cell_cost(n);
        for k in 0..PHASE_LEAVES.len() {
            base_ns[k] = base_ns[k].wrapping_add(bcost.phase_ns[k]);
            new_ns[k] = new_ns[k].wrapping_add(ncost.phase_ns[k]);
        }
    }
    let profiled = base_ns.iter().any(|&v| v > 0) || new_ns.iter().any(|&v| v > 0);
    if profiled {
        // The phase whose absolute self-time grew the most explains the
        // regression; ties broken by leaf order for determinism.
        let worst_phase = (0..PHASE_LEAVES.len())
            .max_by_key(|&k| new_ns[k].saturating_sub(base_ns[k]))
            .expect("six phases");
        let _ = writeln!(s, "phase self-time deltas (all matched cells):");
        for (k, leaf) in PHASE_LEAVES.iter().enumerate() {
            if base_ns[k] == 0 && new_ns[k] == 0 {
                continue;
            }
            let _ = write!(
                s,
                "  {leaf:<14} {:>10} -> {:>10}  ({})",
                fmt_ns(base_ns[k]),
                fmt_ns(new_ns[k]),
                fmt_pct_delta(base_ns[k] as f64, new_ns[k] as f64)
            );
            if k == worst_phase && new_ns[k] > base_ns[k] {
                let _ = write!(s, "  [largest regression]");
            }
            s.push('\n');
        }
    } else {
        let _ = writeln!(
            s,
            "phase self-time deltas: unavailable (neither store was produced with --features profile)"
        );
    }

    // Worst (policy, scenario) cell group by wall-seconds ratio. Each
    // accumulator row is (policy, scenario, base secs, new secs,
    // base phase ns, new phase ns).
    type GroupRow = (String, String, f64, f64, [u64; 6], [u64; 6]);
    let mut groups: Vec<GroupRow> = Vec::new();
    for &(b, n) in &matched {
        let policy = new.policies[nc.policy[n] as usize].clone();
        let scenario = new.scenarios[nc.scenario[n] as usize].clone();
        match groups
            .iter_mut()
            .find(|(p, sc, ..)| *p == policy && *sc == scenario)
        {
            Some((_, _, bs, ns2, bp, np)) => {
                *bs += bc.secs[b];
                *ns2 += nc.secs[n];
                for k in 0..PHASE_LEAVES.len() {
                    bp[k] = bp[k].wrapping_add(bc.cell_cost(b).phase_ns[k]);
                    np[k] = np[k].wrapping_add(nc.cell_cost(n).phase_ns[k]);
                }
            }
            None => groups.push((
                policy,
                scenario,
                bc.secs[b],
                nc.secs[n],
                bc.cell_cost(b).phase_ns,
                nc.cell_cost(n).phase_ns,
            )),
        }
    }
    let ratio = |old: f64, new: f64| {
        if old > 0.0 {
            new / old
        } else if new > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    };
    if let Some((policy, scenario, bs, ns2, bp, np)) = groups
        .iter()
        .max_by(|a, b| ratio(a.2, a.3).total_cmp(&ratio(b.2, b.3)))
    {
        let r = ratio(*bs, *ns2);
        let _ = write!(
            s,
            "worst cell group: {policy} under {scenario} — {bs:.3}s -> {ns2:.3}s (x{r:.2})"
        );
        // The phase that grew most inside the worst group, when profiled.
        if let Some(k) = (0..PHASE_LEAVES.len())
            .filter(|&k| np[k] > bp[k])
            .max_by_key(|&k| np[k] - bp[k])
        {
            let _ = write!(
                s,
                "; dominant phase delta: {} ({})",
                PHASE_LEAVES[k],
                fmt_pct_delta(bp[k] as f64, np[k] as f64)
            );
        }
        s.push('\n');
    }
    Ok(s)
}

/// Numeric coercion for loosely parsed bench JSON.
fn as_f64(v: &serde::Value) -> Option<f64> {
    match *v {
        serde::Value::Int(n) => Some(n as f64),
        serde::Value::UInt(n) => Some(n as f64),
        serde::Value::Float(f) => Some(f),
        _ => None,
    }
}

fn as_str(v: &serde::Value) -> Option<&str> {
    match v {
        serde::Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Compares two entries of a `BENCH_kernel.json` v3 trendline, selected by
/// label (`from`/`to`; defaults: the previous entry and the latest). The
/// file is parsed loosely — this crate cannot depend on the bench crate
/// without a cycle — so only the fields the diff needs are read. Reports
/// each benchmark's best-iteration throughput delta and flags drops
/// beyond 5%.
pub fn diff_bench(text: &str, from: Option<&str>, to: Option<&str>) -> Result<String, String> {
    let root = serde_json::parse_value_str(text)
        .map_err(|e| format!("cannot parse bench trendline: {e}"))?;
    let entries = match root.get("entries") {
        Some(serde::Value::Seq(entries)) => entries,
        _ => return Err("bench trendline has no entries array (legacy v2 file?)".to_string()),
    };
    if entries.len() < 2 && (from.is_none() || to.is_none()) {
        return Err(format!(
            "bench trendline has {} entry(ies); need two to diff",
            entries.len()
        ));
    }
    // Latest entry with the given label, or a positional default.
    let pick = |label: Option<&str>, default_from_end: usize| -> Result<&serde::Value, String> {
        match label {
            Some(l) => entries
                .iter()
                .rev()
                .find(|e| e.get("label").and_then(as_str) == Some(l))
                .ok_or_else(|| format!("no trendline entry labelled {l:?}")),
            None => entries
                .len()
                .checked_sub(default_from_end)
                .and_then(|i| entries.get(i))
                .ok_or_else(|| "trendline too short".to_string()),
        }
    };
    let base = pick(from, 2)?;
    let new = pick(to, 1)?;

    let measurements = |e: &serde::Value| -> Vec<(String, f64)> {
        match e.get("measurements") {
            Some(serde::Value::Seq(ms)) => ms
                .iter()
                .filter_map(|m| {
                    let name = m.get("name").and_then(as_str)?.to_string();
                    let ups = m.get("units_per_sec").and_then(as_f64)?;
                    Some((name, ups))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let label_of = |e: &serde::Value| -> String {
        e.get("label")
            .and_then(as_str)
            .unwrap_or("<unlabelled>")
            .to_string()
    };
    let base_ms = measurements(base);
    let new_ms = measurements(new);

    let mut s = String::new();
    let _ = writeln!(s, "bench diff: {:?} -> {:?}", label_of(base), label_of(new));
    let mut compared = 0usize;
    for (name, new_ups) in &new_ms {
        let Some((_, base_ups)) = base_ms.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(s, "  {name:<28} (new benchmark)");
            continue;
        };
        compared += 1;
        let delta = fmt_pct_delta(*base_ups, *new_ups);
        let flag = if *new_ups < base_ups * 0.95 {
            "  REGRESSED"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  {name:<28} {:>14.0} -> {:>14.0} units/s  ({delta}){flag}",
            base_ups, new_ups
        );
    }
    for (name, _) in &base_ms {
        if !new_ms.iter().any(|(n, _)| n == name) {
            let _ = writeln!(s, "  {name:<28} (removed)");
        }
    }
    if compared == 0 {
        return Err("bench diff: the two entries share no benchmarks".to_string());
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CellCost;
    use crate::store::{Row, SOURCE_GRID};

    /// A tiny synthetic store: `cells` is (scenario, policy, secs, cost).
    fn synth(cells: &[(&str, &str, f64, CellCost)]) -> ResultStore {
        let mut store = ResultStore::new();
        for (v, (scenario, policy, secs, cost)) in cells.iter().enumerate() {
            store.push_row(Row {
                source: SOURCE_GRID,
                econ: 0,
                set: 0,
                scenario,
                value_idx: v as u8,
                value: v as f64,
                policy,
                seed: 42,
                objectives: [1.0, 90.0, 99.0, 10.0],
                norm_score: 0.5,
                risk_score: 0.01,
                secs: *secs,
                events: (secs * 1000.0) as u64,
                digest: format!("cell{v}"),
                cost: *cost,
                worker: (v as u64 % 2) + 1,
                replicas: 1,
                sigma: [0.0; 4],
            });
        }
        store
    }

    fn cost(ns: [u64; 6], depth: u64) -> CellCost {
        CellCost {
            phase_ns: ns,
            peak_queue_depth: depth,
        }
    }

    #[test]
    fn report_names_top_cells_and_phases() {
        let store = synth(&[
            (
                "FailureRate",
                "Libra",
                2.0,
                cost([0, 10, 20, 900, 30, 40], 7),
            ),
            ("Urgency", "FCFS-BF", 0.5, cost([5, 50, 200, 10, 5, 30], 3)),
        ]);
        let text = report(&store, 1, GroupBy::Policy);
        assert!(text.contains("perf report: 2 grid cells"), "{text}");
        assert!(text.contains("profiling: on"), "{text}");
        // Top-1 is the 2.0s Libra cell, dominated by ps_recompute.
        assert!(text.contains("top 1 costliest cells"), "{text}");
        assert!(text.contains("Libra"), "{text}");
        assert!(text.contains(" w1 "), "{text}");
        assert!(text.contains("[ps_recompute 90%]"), "{text}");
        assert!(text.contains("phase self-time by policy"), "{text}");
        // Unprofiled store says so.
        let bare = synth(&[("Urgency", "FCFS-BF", 0.5, CellCost::default())]);
        assert!(report(&bare, 5, GroupBy::Scenario).contains("profiling: off"));
    }

    #[test]
    fn diff_attributes_regression_to_phase_and_group() {
        let baseline = synth(&[
            (
                "FailureRate",
                "Libra",
                1.0,
                cost([10, 20, 300, 100, 40, 30], 5),
            ),
            (
                "FailureRate",
                "FCFS-BF",
                1.0,
                cost([10, 20, 300, 100, 40, 30], 5),
            ),
        ]);
        // Libra's ps_recompute blows up 5×; FCFS-BF is unchanged.
        let new = synth(&[
            (
                "FailureRate",
                "Libra",
                2.0,
                cost([10, 20, 300, 500, 40, 30], 5),
            ),
            (
                "FailureRate",
                "FCFS-BF",
                1.0,
                cost([10, 20, 300, 100, 40, 30], 5),
            ),
        ]);
        let text = diff_stores(&baseline, &new).unwrap();
        assert!(text.contains("2 matched cells"), "{text}");
        let phase_line = text
            .lines()
            .find(|l| l.contains("[largest regression]"))
            .expect("a largest-regression marker");
        assert!(phase_line.contains("ps_recompute"), "{text}");
        let group_line = text
            .lines()
            .find(|l| l.starts_with("worst cell group:"))
            .expect("a worst-group line");
        assert!(group_line.contains("Libra under FailureRate"), "{text}");
        assert!(group_line.contains("ps_recompute"), "{text}");
    }

    #[test]
    fn diff_requires_overlap() {
        let a = synth(&[("A", "P", 1.0, CellCost::default())]);
        let b = synth(&[("B", "Q", 1.0, CellCost::default())]);
        assert!(diff_stores(&a, &b)
            .unwrap_err()
            .contains("no cells in common"));
    }

    #[test]
    fn bench_diff_flags_throughput_drop() {
        let json = r#"{
            "schema_version": 3,
            "entries": [
                {"recorded_unix_secs": 1, "label": "before", "telemetry_enabled": false,
                 "measurements": [
                    {"name": "des_kernel", "units_per_iter": 10, "iters": 1,
                     "total_secs": 0.1, "secs_per_iter": 0.1,
                     "best_secs_per_iter": 0.1, "units_per_sec": 1000000.0},
                    {"name": "stream_stats", "units_per_iter": 10, "iters": 1,
                     "total_secs": 0.1, "secs_per_iter": 0.1,
                     "best_secs_per_iter": 0.1, "units_per_sec": 500.0}
                 ]},
                {"recorded_unix_secs": 2, "label": "after", "telemetry_enabled": false,
                 "measurements": [
                    {"name": "des_kernel", "units_per_iter": 10, "iters": 1,
                     "total_secs": 0.1, "secs_per_iter": 0.1,
                     "best_secs_per_iter": 0.1, "units_per_sec": 800000.0},
                    {"name": "stream_stats", "units_per_iter": 10, "iters": 1,
                     "total_secs": 0.1, "secs_per_iter": 0.1,
                     "best_secs_per_iter": 0.1, "units_per_sec": 510.0}
                 ]}
            ]
        }"#;
        let text = diff_bench(json, None, None).unwrap();
        assert!(text.contains("\"before\" -> \"after\""), "{text}");
        let kernel = text.lines().find(|l| l.contains("des_kernel")).unwrap();
        assert!(
            kernel.contains("-20.0%") && kernel.contains("REGRESSED"),
            "{text}"
        );
        let stream = text.lines().find(|l| l.contains("stream_stats")).unwrap();
        assert!(!stream.contains("REGRESSED"), "{text}");

        // Label selection.
        let by_label = diff_bench(json, Some("before"), Some("after")).unwrap();
        assert_eq!(by_label, text);
        assert!(diff_bench(json, Some("missing"), None)
            .unwrap_err()
            .contains("missing"));
    }

    #[test]
    fn bench_diff_rejects_short_or_legacy_files() {
        let legacy = r#"{"schema_version": 2, "telemetry_enabled": false, "measurements": []}"#;
        assert!(diff_bench(legacy, None, None)
            .unwrap_err()
            .contains("entries"));
        let one = r#"{"schema_version": 3, "entries": [{"label": "only", "measurements": []}]}"#;
        assert!(diff_bench(one, None, None)
            .unwrap_err()
            .contains("need two"));
    }
}
