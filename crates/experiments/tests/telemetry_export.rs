//! End-to-end coverage of the `--telemetry out.json` artifact and of the
//! guarantee that instrumentation never changes simulation results.

use ccs_experiments::TelemetryReport;
use std::path::PathBuf;
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ccs_{}_{name}", std::process::id()))
}

/// Runs `utility_risk summary --quick --telemetry FILE` and parses the
/// emitted JSON. This is the acceptance test of the ISSUE: the file must
/// contain the kernel counters, the queue-depth high-water mark, the
/// per-policy decision-latency histograms (feature builds), and the
/// per-(scenario × policy) wall-time tables (all builds).
#[test]
fn utility_risk_emits_parseable_telemetry() {
    let out = temp_path("telemetry.json");
    let status = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args([
            "summary",
            "--quick",
            "--jobs",
            "40",
            "--telemetry",
            out.to_str().unwrap(),
        ])
        .status()
        .expect("spawn utility_risk");
    assert!(status.success(), "utility_risk failed: {status}");

    let json = std::fs::read_to_string(&out).expect("telemetry file written");
    std::fs::remove_file(&out).ok();
    let report = TelemetryReport::from_json(&json).expect("telemetry JSON parses");

    // Wall-time tables are present regardless of the feature flag: the
    // summary subcommand runs all four grids.
    assert_eq!(report.grids.len(), 4);
    for table in &report.grids {
        assert_eq!(table.scenarios.len(), 13);
        assert_eq!(table.secs.len(), 13);
        assert!(!table.policies.is_empty());
        assert!(
            table.secs.iter().flatten().sum::<f64>() > 0.0,
            "{} / {}: cells must take measurable time",
            table.econ,
            table.set
        );
        assert!(table.wall_secs > 0.0);
        assert!(!table.worker_busy_secs.is_empty());
    }
    assert!(!report.slowest_cells.is_empty());
    assert_eq!(report.feature_enabled, cfg!(feature = "telemetry"));

    if cfg!(feature = "telemetry") {
        let s = &report.snapshot;
        assert!(
            s.counters.get("des.events.processed").copied().unwrap_or(0) > 0,
            "kernel events-processed counter missing: {:?}",
            s.counters
        );
        assert!(
            s.gauges.get("des.queue.depth_hwm").copied().unwrap_or(0) > 0,
            "queue-depth high-water mark missing: {:?}",
            s.gauges
        );
        let decision_histograms: Vec<_> = s
            .histograms
            .iter()
            .filter(|(name, h)| name.starts_with("runner.decision.duration_ns.") && h.count > 0)
            .collect();
        assert!(
            !decision_histograms.is_empty(),
            "per-policy decision-latency histograms missing: {:?}",
            s.histograms.keys().collect::<Vec<_>>()
        );
        assert!(
            s.histograms
                .iter()
                .any(|(name, h)| name.starts_with("runner.run.duration_ns.") && h.count > 0),
            "per-run wall-time histograms missing"
        );
        assert!(
            s.counters
                .get("runner.runs.completed")
                .copied()
                .unwrap_or(0)
                > 0
        );
    } else {
        assert!(
            report.snapshot.is_empty(),
            "snapshot must be empty without the telemetry feature"
        );
    }
}

/// FNV-1a over the canonical JSON encoding of a run result.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Simulation outputs must be byte-identical with and without the
/// `telemetry` feature: this hash is compiled and checked under both
/// feature configurations in CI, so a drift in either build breaks it.
#[test]
fn run_result_identical_across_feature_configs() {
    use ccs_economy::EconomicModel;
    use ccs_experiments::{baseline, EstimateSet};
    use ccs_simsvc::{simulate, RunConfig};
    use ccs_workload::{apply_scenario, SdscSp2Model};

    let mut model = SdscSp2Model::small();
    model.jobs = 60;
    let base = model.generate(12345);
    let jobs = apply_scenario(&base, &baseline(EstimateSet::B), 12345);
    let cfg = RunConfig {
        nodes: 32,
        econ: EconomicModel::CommodityMarket,
    };
    let result = simulate(&jobs, ccs_policies::PolicyKind::FcfsBf, &cfg);
    let json = serde_json::to_string(&result).expect("run result serialises");
    // FNV-1a of the canonical encoding, recorded from a default-feature
    // build; the telemetry-feature CI leg checks the same constant.
    // (Re-recorded when RunMetrics gained the fault-injection counters.)
    const GOLDEN: u64 = 1379623899478093181;
    assert_eq!(
        fnv1a(json.as_bytes()),
        GOLDEN,
        "RunResult encoding drifted (feature telemetry={})",
        cfg!(feature = "telemetry")
    );
}
