//! Risk analysis plots (paper Section 4.3, Figure 1).
//!
//! A risk analysis plot shows, for each policy, one (volatility,
//! performance) point per scenario. This module holds the plot data model,
//! the per-policy extrema summary of Table II, and the synthetic
//! eight-policy sample of Figure 1 used to validate the ranking rules.

use crate::measure::RiskMeasure;
use crate::trend::{self, Gradient, TrendLine};
use serde::{Deserialize, Serialize};

/// One policy's series of risk points across scenarios.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicySeries {
    /// Policy display name.
    pub name: String,
    /// One point per scenario.
    pub points: Vec<RiskMeasure>,
}

impl PolicySeries {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<RiskMeasure>) -> Self {
        PolicySeries {
            name: name.into(),
            points,
        }
    }

    /// Per-policy extrema (one row of paper Table II).
    pub fn extrema(&self) -> Extrema {
        let mut e = Extrema {
            max_performance: f64::NEG_INFINITY,
            min_performance: f64::INFINITY,
            max_volatility: f64::NEG_INFINITY,
            min_volatility: f64::INFINITY,
        };
        for p in &self.points {
            e.max_performance = e.max_performance.max(p.performance);
            e.min_performance = e.min_performance.min(p.performance);
            e.max_volatility = e.max_volatility.max(p.volatility);
            e.min_volatility = e.min_volatility.min(p.volatility);
        }
        e
    }

    /// The policy's trend line, if it has enough distinct points.
    pub fn trend(&self) -> Option<TrendLine> {
        trend::fit(&self.points)
    }

    /// The gradient classification of the trend line.
    pub fn gradient(&self) -> Gradient {
        trend::gradient(&self.points)
    }

    /// Mean distance of the points to the policy's own best corner
    /// (min volatility, max performance) — the concentration measure used
    /// as the final ranking tie-break (the paper's C-vs-D argument).
    pub fn concentration(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let e = self.extrema();
        let corner = RiskMeasure {
            performance: e.max_performance,
            volatility: e.min_volatility,
        };
        self.points.iter().map(|p| p.distance(&corner)).sum::<f64>() / self.points.len() as f64
    }
}

/// Max/min performance and volatility of one policy (a row of Table II).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Extrema {
    /// Highest performance over the scenarios.
    pub max_performance: f64,
    /// Lowest performance.
    pub min_performance: f64,
    /// Highest volatility.
    pub max_volatility: f64,
    /// Lowest volatility.
    pub min_volatility: f64,
}

impl Extrema {
    /// Performance range (Table II "difference").
    pub fn performance_difference(&self) -> f64 {
        self.max_performance - self.min_performance
    }

    /// Volatility range (Table II "difference").
    pub fn volatility_difference(&self) -> f64 {
        self.max_volatility - self.min_volatility
    }
}

/// A complete risk analysis plot: several policies over the same scenarios.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RiskPlot {
    /// Plot title, e.g. `"Set B: SLA"`.
    pub title: String,
    /// One series per policy.
    pub series: Vec<PolicySeries>,
}

impl RiskPlot {
    /// Creates a plot.
    pub fn new(title: impl Into<String>, series: Vec<PolicySeries>) -> Self {
        RiskPlot {
            title: title.into(),
            series,
        }
    }

    /// gnuplot-compatible data: one indexed block per policy, columns
    /// `volatility performance`.
    pub fn to_gnuplot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# {}", self.title);
        for series in &self.series {
            let _ = writeln!(s, "\n\n# policy: {}", series.name);
            for p in &series.points {
                let _ = writeln!(s, "{:.6} {:.6}", p.volatility, p.performance);
            }
        }
        s
    }

    /// A complete gnuplot driver script that renders the companion `.dat`
    /// file (written by [`RiskPlot::to_gnuplot`]) in the visual style of the
    /// paper's figures: performance 0–1 on y, volatility on x, one point
    /// style per policy. `dat_name`/`png_name` are the file names the
    /// script should reference and produce.
    pub fn to_gnuplot_script(&self, dat_name: &str, png_name: &str) -> String {
        use std::fmt::Write as _;
        let x_max = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.volatility))
            .fold(0.5_f64, f64::max)
            * 1.05;
        let mut s = String::new();
        let _ = writeln!(s, "# Auto-generated driver for {dat_name}");
        let _ = writeln!(s, "set terminal pngcairo size 640,480");
        let _ = writeln!(s, "set output '{png_name}'");
        let _ = writeln!(s, "set title \"{}\"", self.title.replace('"', ""));
        let _ = writeln!(s, "set xlabel 'Volatility (Standard Deviation)'");
        let _ = writeln!(s, "set ylabel 'Performance'");
        let _ = writeln!(s, "set xrange [0:{x_max:.3}]");
        let _ = writeln!(s, "set yrange [0:1]");
        let _ = writeln!(s, "set key outside right top");
        let plots: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, series)| {
                format!(
                    "'{dat_name}' index {i} with points pt {} ps 1.2 title '{}'",
                    i + 1,
                    series.name.replace('\'', "")
                )
            })
            .collect();
        let _ = writeln!(s, "plot {}", plots.join(", \\\n     "));
        s
    }
}

/// The eight synthetic policies A–H of the paper's sample risk analysis
/// plot (Figure 1). Their extrema reproduce Table II and their rankings
/// reproduce Tables III and IV.
pub fn sample_figure1() -> RiskPlot {
    let mk = |name: &str, pts: &[(f64, f64)]| {
        PolicySeries::new(
            name,
            pts.iter().map(|&(v, p)| RiskMeasure::new(p, v)).collect(),
        )
    };
    RiskPlot::new(
        "Sample risk analysis plot (Figure 1)",
        vec![
            // A: the ideal policy — the same best point in all 5 scenarios.
            mk("A", &[(0.0, 1.0); 5]),
            // B: constant performance 0.9, volatility 0.3..0.6 (zero gradient).
            mk(
                "B",
                &[
                    (0.3, 0.9),
                    (0.375, 0.9),
                    (0.45, 0.9),
                    (0.525, 0.9),
                    (0.6, 0.9),
                ],
            ),
            // C: perf 0.2..0.7, vol 0.3..1.0, decreasing, points concentrated
            // near its best corner (0.3, 0.7).
            mk(
                "C",
                &[
                    (0.3, 0.7),
                    (0.35, 0.7),
                    (0.3, 0.65),
                    (0.4, 0.68),
                    (1.0, 0.2),
                ],
            ),
            // D: same extrema as C, decreasing, but points spread evenly.
            mk(
                "D",
                &[
                    (0.3, 0.7),
                    (0.475, 0.575),
                    (0.65, 0.45),
                    (0.825, 0.325),
                    (1.0, 0.2),
                ],
            ),
            // E: perf 0.5..0.7, vol 0.1..0.3, decreasing.
            mk(
                "E",
                &[
                    (0.1, 0.7),
                    (0.15, 0.65),
                    (0.2, 0.6),
                    (0.25, 0.55),
                    (0.3, 0.5),
                ],
            ),
            // F: perf 0.2..0.7, vol 0.3..0.7, increasing.
            mk(
                "F",
                &[
                    (0.3, 0.2),
                    (0.4, 0.325),
                    (0.5, 0.45),
                    (0.6, 0.575),
                    (0.7, 0.7),
                ],
            ),
            // G: perf 0.4..0.7, vol 0.3..1.0, increasing.
            mk(
                "G",
                &[
                    (0.3, 0.4),
                    (0.475, 0.475),
                    (0.65, 0.55),
                    (0.825, 0.625),
                    (1.0, 0.7),
                ],
            ),
            // H: perf 0.2..0.7, vol 0.3..1.0, increasing.
            mk(
                "H",
                &[
                    (0.3, 0.2),
                    (0.475, 0.325),
                    (0.65, 0.45),
                    (0.825, 0.575),
                    (1.0, 0.7),
                ],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_extrema_reproduced() {
        let plot = sample_figure1();
        let expect = [
            // (policy, max perf, min perf, perf diff, max vol, min vol, vol diff)
            ("A", 1.0, 1.0, 0.0, 0.0, 0.0, 0.0),
            ("B", 0.9, 0.9, 0.0, 0.6, 0.3, 0.3),
            ("C", 0.7, 0.2, 0.5, 1.0, 0.3, 0.7),
            ("D", 0.7, 0.2, 0.5, 1.0, 0.3, 0.7),
            ("E", 0.7, 0.5, 0.2, 0.3, 0.1, 0.2),
            ("F", 0.7, 0.2, 0.5, 0.7, 0.3, 0.4),
            ("G", 0.7, 0.4, 0.3, 1.0, 0.3, 0.7),
            ("H", 0.7, 0.2, 0.5, 1.0, 0.3, 0.7),
        ];
        for (name, maxp, minp, pdiff, maxv, minv, vdiff) in expect {
            let s = plot.series.iter().find(|s| s.name == name).unwrap();
            let e = s.extrema();
            assert!((e.max_performance - maxp).abs() < 1e-9, "{name} maxp");
            assert!((e.min_performance - minp).abs() < 1e-9, "{name} minp");
            assert!(
                (e.performance_difference() - pdiff).abs() < 1e-9,
                "{name} pdiff"
            );
            assert!((e.max_volatility - maxv).abs() < 1e-9, "{name} maxv");
            assert!((e.min_volatility - minv).abs() < 1e-9, "{name} minv");
            assert!(
                (e.volatility_difference() - vdiff).abs() < 1e-9,
                "{name} vdiff"
            );
        }
    }

    #[test]
    fn sample_gradients_match_paper() {
        let plot = sample_figure1();
        let grad = |n: &str| plot.series.iter().find(|s| s.name == n).unwrap().gradient();
        assert_eq!(grad("A"), Gradient::NotAvailable);
        assert_eq!(grad("B"), Gradient::Zero);
        assert_eq!(grad("C"), Gradient::Decreasing);
        assert_eq!(grad("D"), Gradient::Decreasing);
        assert_eq!(grad("E"), Gradient::Decreasing);
        assert_eq!(grad("F"), Gradient::Increasing);
        assert_eq!(grad("G"), Gradient::Increasing);
        assert_eq!(grad("H"), Gradient::Increasing);
    }

    #[test]
    fn c_is_more_concentrated_than_d() {
        let plot = sample_figure1();
        let conc = |n: &str| {
            plot.series
                .iter()
                .find(|s| s.name == n)
                .unwrap()
                .concentration()
        };
        assert!(
            conc("C") < conc("D"),
            "C's points cluster near its best corner"
        );
    }

    #[test]
    fn gnuplot_export_contains_all_policies() {
        let plot = sample_figure1();
        let text = plot.to_gnuplot();
        for s in &plot.series {
            assert!(text.contains(&format!("# policy: {}", s.name)));
        }
        assert!(
            text.lines()
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .count()
                >= 40
        );
    }

    #[test]
    fn gnuplot_script_references_every_series() {
        let plot = sample_figure1();
        let script = plot.to_gnuplot_script("fig1a.dat", "fig1a.png");
        assert!(script.contains("set output 'fig1a.png'"));
        assert!(script.contains("set yrange [0:1]"));
        for (i, s) in plot.series.iter().enumerate() {
            assert!(script.contains(&format!("index {i} ")), "{}", s.name);
            assert!(script.contains(&format!("title '{}'", s.name)));
        }
    }

    #[test]
    fn each_sample_policy_has_five_scenario_points() {
        for s in sample_figure1().series {
            assert_eq!(s.points.len(), 5, "{}", s.name);
        }
    }
}
