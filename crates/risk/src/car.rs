//! Computation-at-Risk (CaR) — the related-work risk measure the paper
//! compares itself against (Kleban & Clearwater 2004, refs [15][16]).
//!
//! Where the paper's separate/integrated analysis grades *policies* by the
//! volatility of normalized objectives, CaR grades a *workload outcome* by
//! the tail of its per-job completion metrics, in direct analogy to
//! financial Value-at-Risk: "with confidence q, a job's makespan (or
//! slowdown) does not exceed CaR_q". This module implements CaR over any
//! sample set, so the two methods can be compared on identical simulation
//! output (see the `car_vs_risk` ablation in ccs-experiments).
//!
//! Definitions follow the CaR papers:
//! - **makespan** (response time): `finish − submit` per job;
//! - **expansion factor** (slowdown): `(wait + runtime)/runtime`;
//! - `CaR_q` = the `q`-quantile of the chosen metric's distribution;
//! - the **CaR ratio** `CaR_q / median` measures tail heaviness — how much
//!   worse the at-risk jobs fare than the typical job.

use serde::{Deserialize, Serialize};

/// Which per-job metric the CaR analysis uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CarMetric {
    /// Response time `finish − submit` (the CaR papers' "makespan").
    Makespan,
    /// Expansion factor `(wait + runtime)/runtime` (bounded below by 1).
    Slowdown,
}

impl CarMetric {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CarMetric::Makespan => "makespan",
            CarMetric::Slowdown => "slowdown",
        }
    }
}

/// Summary of a CaR analysis over one sample set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CarAnalysis {
    /// The metric analysed.
    pub metric: CarMetric,
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample median (CaR at q = 0.5).
    pub median: f64,
    /// CaR at 90 %.
    pub car90: f64,
    /// CaR at 95 %.
    pub car95: f64,
    /// CaR at 99 %.
    pub car99: f64,
}

/// The `q`-quantile of `samples` (linear interpolation between order
/// statistics; `0 ≤ q ≤ 1`). Panics on an empty slice or out-of-range `q`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of an empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Computation-at-Risk at confidence `q`: the value the metric stays below
/// with probability `q`.
pub fn car(samples: &[f64], q: f64) -> f64 {
    quantile(samples, q)
}

/// Tail-heaviness ratio `CaR_q / median` (≥ 1 for q ≥ 0.5 on non-negative
/// metrics). A ratio near 1 means predictable completions; a large ratio
/// means the at-risk jobs fare far worse than the typical job.
pub fn car_ratio(samples: &[f64], q: f64) -> f64 {
    let med = quantile(samples, 0.5);
    if med <= 0.0 {
        return 1.0;
    }
    car(samples, q) / med
}

/// Runs the standard CaR summary over a sample set.
pub fn analyze(metric: CarMetric, samples: &[f64]) -> CarAnalysis {
    assert!(!samples.is_empty(), "CaR analysis needs samples");
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    CarAnalysis {
        metric,
        count: samples.len(),
        mean,
        median: quantile(samples, 0.5),
        car90: quantile(samples, 0.90),
        car95: quantile(samples, 0.95),
        car99: quantile(samples, 0.99),
    }
}

impl std::fmt::Display for CarAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} over {} jobs: mean {:.1}, median {:.1}, CaR90 {:.1}, CaR95 {:.1}, CaR99 {:.1}",
            self.metric.label(),
            self.count,
            self.mean,
            self.median,
            self.car90,
            self.car95,
            self.car99
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_known_data() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        // Interpolation between order statistics.
        assert!((quantile(&xs, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn car_is_monotone_in_q() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).powf(1.5)).collect();
        let mut prev = f64::NEG_INFINITY;
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let c = car(&xs, q);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn car_ratio_measures_tail_heaviness() {
        let tight = vec![10.0; 50];
        assert_eq!(car_ratio(&tight, 0.95), 1.0);
        let mut heavy = vec![10.0; 48];
        heavy.push(1000.0);
        heavy.push(2000.0);
        assert!(car_ratio(&heavy, 0.99) > 10.0, "heavy tail detected");
    }

    #[test]
    fn analyze_summary_is_consistent() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let a = analyze(CarMetric::Makespan, &xs);
        assert_eq!(a.count, 1000);
        assert!((a.mean - 500.5).abs() < 1e-9);
        assert!((a.median - 500.5).abs() < 1.0);
        assert!(a.car90 < a.car95 && a.car95 < a.car99);
        assert!(a.car99 <= 1000.0);
        let text = format!("{a}");
        assert!(text.contains("makespan"));
    }

    #[test]
    #[should_panic]
    fn empty_samples_panic() {
        analyze(CarMetric::Slowdown, &[]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_q_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn single_sample_degenerate() {
        assert_eq!(car(&[7.0], 0.99), 7.0);
        assert_eq!(car_ratio(&[7.0], 0.99), 1.0);
    }
}
