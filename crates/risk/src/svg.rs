//! Minimal SVG scatter-plot writer for risk analysis plots.
//!
//! Produces self-contained SVG documents in the visual style of the paper's
//! figures: performance (0–1) on the y axis, volatility on the x axis, one
//! marker shape/colour per policy, optional trend lines, and a legend. No
//! external dependencies.

use crate::plot::RiskPlot;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Upper bound of the volatility (x) axis; the paper uses 0.5.
    pub x_max: f64,
    /// Draw least-squares trend lines where defined.
    pub trend_lines: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 640,
            height: 480,
            x_max: 0.5,
            trend_lines: true,
        }
    }
}

const COLORS: &[&str] = &[
    "#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#f39c12", "#16a085", "#2c3e50", "#d35400",
];

const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

/// Renders `plot` as an SVG document.
pub fn render(plot: &RiskPlot, opt: &SvgOptions) -> String {
    let w = opt.width as f64;
    let h = opt.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let x_max = opt
        .x_max
        .max(
            plot.series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.volatility))
                .fold(0.0_f64, f64::max)
                * 1.05,
        )
        .max(1e-6);

    let to_x = |v: f64| MARGIN_L + (v / x_max).min(1.0) * plot_w;
    let to_y = |p: f64| MARGIN_T + (1.0 - p.clamp(0.0, 1.0)) * plot_h;

    let mut s = String::with_capacity(8192);
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
        opt.width, opt.height
    );
    let _ = writeln!(s, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Title.
    let _ = writeln!(
        s,
        r#"<text x="{:.1}" y="22" text-anchor="middle" font-size="14">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        xml_escape(&plot.title)
    );
    // Axes + grid.
    for i in 0..=5 {
        let fy = i as f64 / 5.0;
        let y = to_y(fy);
        let _ = writeln!(
            s,
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_L,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{fy:.1}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0
        );
        let fx = x_max * i as f64 / 5.0;
        let x = to_x(fx);
        let _ = writeln!(
            s,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            MARGIN_T,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            s,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{fx:.2}</text>"#,
            MARGIN_T + plot_h + 18.0
        );
    }
    let _ = writeln!(
        s,
        r#"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="black"/>"#,
        MARGIN_L, MARGIN_T
    );
    // Axis labels.
    let _ = writeln!(
        s,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">Volatility (Standard Deviation)</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0
    );
    let _ = writeln!(
        s,
        r#"<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">Performance</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0
    );

    // Series.
    for (i, series) in plot.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        if opt.trend_lines {
            if let Some(line) = series.trend() {
                let (v0, v1) = (0.0, x_max);
                let p0 = line.intercept + line.slope * v0;
                let p1 = line.intercept + line.slope * v1;
                let _ = writeln!(
                    s,
                    r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-dasharray="4 3" opacity="0.5"/>"#,
                    to_x(v0),
                    to_y(p0),
                    to_x(v1),
                    to_y(p1)
                );
            }
        }
        for p in &series.points {
            let _ = writeln!(
                s,
                r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{color}" fill-opacity="0.8"/>"#,
                to_x(p.volatility),
                to_y(p.performance)
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 + 18.0 * i as f64;
        let lx = MARGIN_L + plot_w + 14.0;
        let _ = writeln!(
            s,
            r#"<circle cx="{lx:.1}" cy="{ly:.1}" r="4" fill="{color}"/>"#
        );
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            lx + 10.0,
            ly + 4.0,
            xml_escape(&series.name)
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Renders a simple multi-series line chart (used for the paper's Figure 2,
/// which is a function plot rather than a risk scatter). Each series is a
/// list of `(x, y)` points drawn as a polyline with a legend entry.
pub fn render_lines(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(String, Vec<(f64, f64)>)],
    opt: &SvgOptions,
) -> String {
    let w = opt.width as f64;
    let h = opt.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;

    let all = series.iter().flat_map(|(_, pts)| pts.iter());
    let (mut x_min, mut x_max, mut y_min, mut y_max) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if !x_min.is_finite() {
        (x_min, x_max, y_min, y_max) = (0.0, 1.0, 0.0, 1.0);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let to_x = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let to_y = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut s = String::with_capacity(8192);
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
        opt.width, opt.height
    );
    let _ = writeln!(s, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = writeln!(
        s,
        r#"<text x="{:.1}" y="22" text-anchor="middle" font-size="14">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        xml_escape(title)
    );
    // Frame + zero line if it is inside the range.
    let _ = writeln!(
        s,
        r#"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="black"/>"#,
        MARGIN_L, MARGIN_T
    );
    if y_min < 0.0 && y_max > 0.0 {
        let zy = to_y(0.0);
        let _ = writeln!(
            s,
            r##"<line x1="{:.1}" y1="{zy:.1}" x2="{:.1}" y2="{zy:.1}" stroke="#999" stroke-dasharray="2 2"/>"##,
            MARGIN_L,
            MARGIN_L + plot_w
        );
    }
    // Axis extremes as tick labels.
    for (fx, anchor) in [(x_min, "start"), (x_max, "end")] {
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="{anchor}">{fx:.0}</text>"#,
            to_x(fx),
            MARGIN_T + plot_h + 18.0
        );
    }
    for fy in [y_min, y_max] {
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{fy:.0}</text>"#,
            MARGIN_L - 6.0,
            to_y(fy) + 4.0
        );
    }
    let _ = writeln!(
        s,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0,
        xml_escape(x_label)
    );
    let _ = writeln!(
        s,
        r#"<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(y_label)
    );
    for (i, (label, pts)) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> = pts
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", to_x(x), to_y(y)))
            .collect();
        let _ = writeln!(
            s,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        );
        let ly = MARGIN_T + 14.0 + 18.0 * i as f64;
        let lx = MARGIN_L + plot_w + 14.0;
        let _ = writeln!(
            s,
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            lx + 16.0
        );
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            lx + 22.0,
            ly + 4.0,
            xml_escape(label)
        );
    }
    s.push_str("</svg>\n");
    s
}

fn xml_escape(raw: &str) -> String {
    raw.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::sample_figure1;

    #[test]
    fn renders_well_formed_svg() {
        let svg = render(&sample_figure1(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        // 8 policies × 5 points + 8 legend dots = 48 circles.
        assert_eq!(svg.matches("<circle").count(), 48);
    }

    #[test]
    fn escapes_titles() {
        let mut plot = sample_figure1();
        plot.title = "wait & <SLA>".to_string();
        let svg = render(&plot, &SvgOptions::default());
        assert!(svg.contains("wait &amp; &lt;SLA&gt;"));
    }

    #[test]
    fn line_chart_renders_polylines_and_legend() {
        let series = vec![
            ("flat".to_string(), vec![(0.0, 5.0), (10.0, 5.0)]),
            (
                "decay".to_string(),
                vec![(0.0, 5.0), (5.0, 5.0), (10.0, -5.0)],
            ),
        ];
        let svg = render_lines(
            "penalty",
            "t (s)",
            "utility ($)",
            &series,
            &SvgOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("penalty"));
        assert!(svg.contains("decay"));
        // Zero line drawn because the y range crosses zero.
        assert!(svg.contains("stroke-dasharray=\"2 2\""));
    }

    #[test]
    fn line_chart_handles_degenerate_input() {
        let svg = render_lines("empty", "x", "y", &[], &SvgOptions::default());
        assert!(svg.contains("</svg>"));
        let one = vec![("p".to_string(), vec![(3.0, 3.0)])];
        let svg = render_lines("one", "x", "y", &one, &SvgOptions::default());
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn trend_lines_toggle() {
        let with = render(&sample_figure1(), &SvgOptions::default());
        let without = render(
            &sample_figure1(),
            &SvgOptions {
                trend_lines: false,
                ..Default::default()
            },
        );
        assert!(
            with.matches("stroke-dasharray").count() > without.matches("stroke-dasharray").count()
        );
    }
}
