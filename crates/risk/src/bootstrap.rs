//! Bootstrap confidence intervals for risk measures.
//!
//! A separate risk analysis summarizes only six experiment points, so its
//! performance/volatility estimates carry sampling noise. This module
//! quantifies that noise by the nonparametric bootstrap: resample the
//! normalized results with replacement, recompute the measure, and take
//! percentile intervals. A deterministic seed makes the intervals
//! reproducible.

use crate::measure::RiskMeasure;
use crate::separate::separate;

/// A two-sided percentile confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

/// Bootstrap result for one separate risk analysis.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapResult {
    /// The point estimate on the original data.
    pub point: RiskMeasure,
    /// Confidence interval of the performance.
    pub performance: Interval,
    /// Confidence interval of the volatility.
    pub volatility: Interval,
    /// Number of bootstrap replicates drawn.
    pub replicates: usize,
}

/// A tiny deterministic PRNG (xorshift64*), kept local so `ccs-risk` stays
/// free of external dependencies.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Self {
        Prng(seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        let x = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (x % bound as u64) as usize
    }
}

/// Percentile of a sorted slice (nearest-rank with interpolation).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let f = pos - lo as f64;
        sorted[lo] * (1.0 - f) + sorted[hi] * f
    }
}

/// Bootstraps the separate risk analysis of `normalized` results.
///
/// `confidence` is the two-sided level (e.g. 0.95); `replicates` the number
/// of resamples (≥ 100 recommended); `seed` fixes the resampling.
pub fn bootstrap_separate(
    normalized: &[f64],
    confidence: f64,
    replicates: usize,
    seed: u64,
) -> BootstrapResult {
    assert!(!normalized.is_empty());
    assert!((0.0..1.0).contains(&confidence) || confidence == 0.0 || confidence < 1.0);
    assert!(replicates >= 10, "too few bootstrap replicates");
    let point = separate(normalized);
    let mut rng = Prng::new(seed);
    let n = normalized.len();
    let mut perf = Vec::with_capacity(replicates);
    let mut vol = Vec::with_capacity(replicates);
    let mut resample = vec![0.0f64; n];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = normalized[rng.next_usize(n)];
        }
        let m = separate(&resample);
        perf.push(m.performance);
        vol.push(m.volatility);
    }
    perf.sort_by(|a, b| a.total_cmp(b));
    vol.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - confidence) / 2.0;
    BootstrapResult {
        point,
        performance: Interval {
            lo: percentile(&perf, alpha),
            hi: percentile(&perf, 1.0 - alpha),
        },
        volatility: Interval {
            lo: percentile(&vol, alpha),
            hi: percentile(&vol, 1.0 - alpha),
        },
        replicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_within_its_own_interval() {
        let data = [0.2, 0.5, 0.8, 0.4, 0.6, 0.7];
        let b = bootstrap_separate(&data, 0.95, 500, 42);
        assert!(b.performance.contains(b.point.performance));
        // Volatility point can sit at the interval edge for tiny samples,
        // so allow a hair of slack.
        assert!(b.point.volatility >= b.volatility.lo - 0.05);
        assert!(b.point.volatility <= b.volatility.hi + 0.05);
    }

    #[test]
    fn constant_data_has_degenerate_interval() {
        let b = bootstrap_separate(&[0.5; 6], 0.95, 200, 1);
        assert!(b.performance.width() < 1e-12);
        assert!(b.volatility.width() < 1e-9);
        assert!((b.point.performance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_in_seed() {
        let data = [0.1, 0.9, 0.5, 0.3];
        let a = bootstrap_separate(&data, 0.9, 300, 7);
        let b = bootstrap_separate(&data, 0.9, 300, 7);
        assert_eq!(a.performance, b.performance);
        assert_eq!(a.volatility, b.volatility);
        let c = bootstrap_separate(&data, 0.9, 300, 8);
        assert!(
            a.performance != c.performance || a.volatility != c.volatility,
            "different seeds must resample differently"
        );
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let data = [0.1, 0.4, 0.6, 0.9, 0.2, 0.8];
        let narrow = bootstrap_separate(&data, 0.5, 1000, 3);
        let wide = bootstrap_separate(&data, 0.99, 1000, 3);
        assert!(wide.performance.width() >= narrow.performance.width());
    }

    #[test]
    fn interval_bounds_stay_in_unit_range() {
        let data = [0.0, 1.0, 0.5, 0.25, 0.75, 1.0];
        let b = bootstrap_separate(&data, 0.95, 400, 11);
        assert!(b.performance.lo >= 0.0 && b.performance.hi <= 1.0);
        assert!(b.volatility.lo >= 0.0 && b.volatility.hi <= 0.5 + 1e-9);
    }

    #[test]
    #[should_panic]
    fn too_few_replicates_panics() {
        bootstrap_separate(&[0.5], 0.95, 5, 1);
    }
}
