//! Trend lines over risk-analysis points (paper Section 4.3).
//!
//! A policy's points (one per scenario) may be summarized by a least-squares
//! trend line of performance against volatility. The *gradient* of that line
//! enters the ranking rules, with preference order decreasing → increasing →
//! zero: a decreasing gradient means lower volatility accompanies higher
//! performance (good); an increasing gradient means performance is bought
//! with volatility; a zero gradient means volatility varies with no
//! performance change. A policy whose points are identical (or collinear in
//! volatility) has no trend line at all.

use crate::measure::RiskMeasure;
use serde::{Deserialize, Serialize};

/// Classification of a policy's trend-line gradient.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Gradient {
    /// Performance falls as volatility rises (preferred: the policy's best
    /// performance comes with its lowest volatility).
    Decreasing,
    /// Performance rises with volatility.
    Increasing,
    /// Volatility changes with no performance change.
    Zero,
    /// No trend line: fewer than two distinct points.
    NotAvailable,
}

impl Gradient {
    /// Ranking preference (lower is better): decreasing, increasing, zero,
    /// then not-available (paper Section 4.3).
    pub fn preference(self) -> u8 {
        match self {
            Gradient::Decreasing => 0,
            Gradient::Increasing => 1,
            Gradient::Zero => 2,
            Gradient::NotAvailable => 3,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Gradient::Decreasing => "Decreasing",
            Gradient::Increasing => "Increasing",
            Gradient::Zero => "Zero",
            Gradient::NotAvailable => "NA",
        }
    }
}

impl std::fmt::Display for Gradient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fitted trend line `performance = slope · volatility + intercept`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrendLine {
    /// Slope in the (volatility, performance) plane.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
}

/// Slopes with magnitude below this are classified as [`Gradient::Zero`].
const FLAT_SLOPE: f64 = 1e-6;

/// Fits the least-squares trend line through a policy's points. Returns
/// `None` when the points do not span distinct volatilities (the paper: a
/// policy "cannot have a trend line if it does not have any or too few
/// different points").
pub fn fit(points: &[RiskMeasure]) -> Option<TrendLine> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.volatility).sum::<f64>() / n;
    let my = points.iter().map(|p| p.performance).sum::<f64>() / n;
    let sxx: f64 = points
        .iter()
        .map(|p| (p.volatility - mx) * (p.volatility - mx))
        .sum();
    if sxx <= 1e-15 {
        return None;
    }
    let sxy: f64 = points
        .iter()
        .map(|p| (p.volatility - mx) * (p.performance - my))
        .sum();
    let slope = sxy / sxx;
    Some(TrendLine {
        slope,
        intercept: my - slope * mx,
    })
}

/// Classifies the gradient of a policy's points.
pub fn gradient(points: &[RiskMeasure]) -> Gradient {
    match fit(points) {
        None => Gradient::NotAvailable,
        Some(line) if line.slope.abs() < FLAT_SLOPE => Gradient::Zero,
        Some(line) if line.slope < 0.0 => Gradient::Decreasing,
        Some(_) => Gradient::Increasing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(data: &[(f64, f64)]) -> Vec<RiskMeasure> {
        data.iter().map(|&(v, p)| RiskMeasure::new(p, v)).collect()
    }

    #[test]
    fn identical_points_have_no_trend() {
        let p = pts(&[(0.0, 1.0); 5]);
        assert_eq!(gradient(&p), Gradient::NotAvailable);
        assert!(fit(&p).is_none());
    }

    #[test]
    fn single_point_has_no_trend() {
        assert_eq!(gradient(&pts(&[(0.2, 0.5)])), Gradient::NotAvailable);
    }

    #[test]
    fn decreasing_gradient() {
        let p = pts(&[(0.1, 0.9), (0.3, 0.6), (0.5, 0.3)]);
        assert_eq!(gradient(&p), Gradient::Decreasing);
        let line = fit(&p).unwrap();
        assert!((line.slope + 1.5).abs() < 1e-9);
    }

    #[test]
    fn increasing_gradient() {
        let p = pts(&[(0.1, 0.2), (0.5, 0.8)]);
        assert_eq!(gradient(&p), Gradient::Increasing);
    }

    #[test]
    fn zero_gradient() {
        let p = pts(&[(0.1, 0.7), (0.3, 0.7), (0.6, 0.7)]);
        assert_eq!(gradient(&p), Gradient::Zero);
    }

    #[test]
    fn preference_order_matches_paper() {
        assert!(Gradient::Decreasing.preference() < Gradient::Increasing.preference());
        assert!(Gradient::Increasing.preference() < Gradient::Zero.preference());
        assert!(Gradient::Zero.preference() < Gradient::NotAvailable.preference());
    }

    #[test]
    fn labels() {
        assert_eq!(Gradient::Decreasing.label(), "Decreasing");
        assert_eq!(format!("{}", Gradient::NotAvailable), "NA");
    }
}
