//! Stochastic dominance between policies.
//!
//! A risk plot gives each policy a *distribution* of performance across
//! scenarios. Saying "A outperforms B" from means alone hides the tails;
//! first-order stochastic dominance (FSD) is the standard decision-theoretic
//! strengthening: A dominates B when A's performance CDF lies at or below
//! B's everywhere (A is at least as likely to exceed any threshold), with
//! strict inequality somewhere. Every expected-utility maximizer with an
//! increasing utility then prefers A — regardless of risk appetite.
//!
//! [`dominates`] tests FSD on two sample sets; [`dominance_matrix`]
//! evaluates all policy pairs of a plot; [`paired_wins`] counts per-scenario
//! wins (the paired sign statistic), a weaker but scenario-matched
//! comparison.

use crate::plot::RiskPlot;
use serde::{Deserialize, Serialize};

/// Outcome of a pairwise dominance test.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Dominance {
    /// The first sample set first-order dominates the second.
    First,
    /// The second dominates the first.
    Second,
    /// The distributions are identical.
    Equal,
    /// The CDFs cross: neither dominates.
    Neither,
}

/// Tests first-order stochastic dominance between two sample sets of equal
/// or unequal size (higher values better). Uses the empirical CDFs compared
/// at every observed value.
pub fn dominates(a: &[f64], b: &[f64]) -> Dominance {
    assert!(!a.is_empty() && !b.is_empty(), "dominance needs samples");
    let mut grid: Vec<f64> = a.iter().chain(b).copied().collect();
    grid.sort_by(|x, y| x.total_cmp(y));
    grid.dedup();

    let cdf = |xs: &[f64], v: f64| xs.iter().filter(|&&x| x <= v).count() as f64 / xs.len() as f64;
    let mut a_better = false;
    let mut b_better = false;
    for &v in &grid {
        let fa = cdf(a, v);
        let fb = cdf(b, v);
        if fa < fb - 1e-12 {
            a_better = true; // A's CDF lower: A more likely to exceed v
        } else if fb < fa - 1e-12 {
            b_better = true;
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::First,
        (false, true) => Dominance::Second,
        (false, false) => Dominance::Equal,
        (true, true) => Dominance::Neither,
    }
}

/// Per-scenario paired comparison: how often does the first policy's
/// performance strictly beat the second's on the *same* scenario?
/// Returns `(wins_a, wins_b, ties)`.
pub fn paired_wins(a: &[f64], b: &[f64]) -> (usize, usize, usize) {
    assert_eq!(
        a.len(),
        b.len(),
        "paired comparison needs matched scenarios"
    );
    let mut wins_a = 0;
    let mut wins_b = 0;
    let mut ties = 0;
    for (&x, &y) in a.iter().zip(b) {
        if x > y + 1e-12 {
            wins_a += 1;
        } else if y > x + 1e-12 {
            wins_b += 1;
        } else {
            ties += 1;
        }
    }
    (wins_a, wins_b, ties)
}

/// One row of the dominance matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DominancePair {
    /// First policy.
    pub a: String,
    /// Second policy.
    pub b: String,
    /// FSD verdict on the performance distributions.
    pub verdict: Dominance,
    /// Per-scenario wins of `a` over `b`.
    pub wins_a: usize,
    /// Per-scenario wins of `b` over `a`.
    pub wins_b: usize,
}

/// Evaluates every unordered policy pair of a plot on their performance
/// samples (one per scenario).
pub fn dominance_matrix(plot: &RiskPlot) -> Vec<DominancePair> {
    let perf: Vec<(String, Vec<f64>)> = plot
        .series
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.points.iter().map(|p| p.performance).collect(),
            )
        })
        .collect();
    let mut out = Vec::new();
    for i in 0..perf.len() {
        for j in (i + 1)..perf.len() {
            let verdict = dominates(&perf[i].1, &perf[j].1);
            let (wins_a, wins_b, _) = paired_wins(&perf[i].1, &perf[j].1);
            out.push(DominancePair {
                a: perf[i].0.clone(),
                b: perf[j].0.clone(),
                verdict,
                wins_a,
                wins_b,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::sample_figure1;

    #[test]
    fn clear_dominance() {
        let a = [0.8, 0.9, 0.85];
        let b = [0.3, 0.4, 0.35];
        assert_eq!(dominates(&a, &b), Dominance::First);
        assert_eq!(dominates(&b, &a), Dominance::Second);
    }

    #[test]
    fn identical_distributions_are_equal() {
        let a = [0.5, 0.7, 0.6];
        let b = [0.6, 0.5, 0.7]; // same multiset, different order
        assert_eq!(dominates(&a, &b), Dominance::Equal);
    }

    #[test]
    fn crossing_cdfs_are_incomparable() {
        // a: tight around 0.5; b: spread {0.1, 0.9}. Neither dominates.
        let a = [0.5, 0.5];
        let b = [0.1, 0.9];
        assert_eq!(dominates(&a, &b), Dominance::Neither);
    }

    #[test]
    fn dominance_shift_invariance() {
        let a = [0.2, 0.4, 0.6];
        let b: Vec<f64> = a.iter().map(|x| x + 0.1).collect();
        assert_eq!(
            dominates(&b, &a),
            Dominance::First,
            "a shifted up dominates"
        );
    }

    #[test]
    fn paired_wins_counts() {
        let a = [0.9, 0.2, 0.5];
        let b = [0.1, 0.8, 0.5];
        assert_eq!(paired_wins(&a, &b), (1, 1, 1));
    }

    #[test]
    fn sample_plot_matrix_is_complete_and_sane() {
        let plot = sample_figure1();
        let m = dominance_matrix(&plot);
        assert_eq!(m.len(), 8 * 7 / 2);
        // A (the ideal policy) dominates everyone.
        for pair in m.iter().filter(|p| p.a == "A") {
            assert_eq!(pair.verdict, Dominance::First, "A vs {}", pair.b);
        }
        // C and D have the same performance multisets? C: {.7,.7,.65,.68,.2},
        // D: {.7,.575,.45,.325,.2} — C dominates D.
        let cd = m.iter().find(|p| p.a == "C" && p.b == "D").unwrap();
        assert_eq!(cd.verdict, Dominance::First);
        // F and H share the same performance values: equal.
        let fh = m
            .iter()
            .find(|p| (p.a == "F" && p.b == "H") || (p.a == "H" && p.b == "F"))
            .unwrap();
        assert_eq!(fh.verdict, Dominance::Equal);
    }

    #[test]
    #[should_panic]
    fn empty_samples_panic() {
        dominates(&[], &[1.0]);
    }
}
