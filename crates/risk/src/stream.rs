//! Streaming (online) risk statistics: Welford accumulators, sliding
//! windows, and realtime risk scores.
//!
//! The batch analyses in [`crate::separate`] need every measurement of a
//! scenario sweep up front. This module provides the *incremental*
//! counterparts the observability layer runs while experiments are still in
//! flight:
//!
//! * [`Welford`] — numerically stable online mean/variance (Welford's
//!   algorithm) with the Chan et al. merge of partial accumulators, the
//!   primitive a distributed grid needs to combine shards.
//! * [`SlidingStats`] — the same statistics over only the most recent `w`
//!   observations, for drift-sensitive monitoring.
//! * [`RealtimeRisk`] — normalized impact × observed violation probability,
//!   in the spirit of KMamiz's `RiskAnalyzer.RealtimeRisk`: an
//!   interpretable live risk score computed from the outcomes observed so
//!   far.
//!
//! The contract with the batch oracle: feeding a [`Welford`] the same
//! normalized results and calling [`Welford::measure`] agrees with
//! [`crate::separate::separate`] to within `1e-9` (the two use different
//! but algebraically equivalent variance formulations; the property tests
//! pin the epsilon).

use crate::measure::RiskMeasure;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Welford's online mean/variance accumulator.
///
/// Push observations one at a time; mean, population variance, min, max,
/// and count are available after every push. Two partial accumulators
/// combine exactly (up to rounding) with [`Welford::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    /// Σ (xᵢ − mean)² — the running sum of squared deviations.
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Panics on a non-finite value — NaN must never
    /// silently poison a running mean.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "Welford observation {x} is not finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator into this one (Chan et al. parallel
    /// merge): the result is as if every observation of both had been
    /// pushed into a single accumulator.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations pushed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Running mean; 0 when empty (matching the degenerate-denominator
    /// convention used throughout the metrics layer).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance `Σ(x−μ)²/n`; 0 when empty. Clamped at 0 against
    /// tiny negative rounding, mirroring the batch oracle.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Population standard deviation (`σ` of Eq. 6); 0 when empty.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Unbiased sample variance `Σ(x−μ)²/(n−1)`; 0 with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The streaming separate risk analysis (paper Eqs. 5–6) of the
    /// normalized results pushed so far: performance = mean, volatility =
    /// population standard deviation.
    ///
    /// Panics when empty (like [`crate::separate::separate`]) or when the
    /// observations were not normalized to `[0, 1]`.
    pub fn measure(&self) -> RiskMeasure {
        assert!(
            self.n > 0,
            "streaming risk measure needs at least one result"
        );
        assert!(
            self.min >= 0.0 && self.max <= 1.0,
            "streaming risk measure over unnormalized inputs [{}, {}]",
            self.min,
            self.max
        );
        RiskMeasure {
            performance: self.mean,
            volatility: self.population_std(),
        }
    }
}

/// Mean/variance over only the most recent `window` observations.
///
/// Pushes are O(1); statistics are recomputed on demand by folding the
/// retained window through a fresh [`Welford`] (O(window)), trading a
/// little query cost for exactness — incremental removal of old
/// observations is numerically treacherous, and monitoring windows are
/// small.
#[derive(Clone, Debug)]
pub struct SlidingStats {
    window: usize,
    buf: VecDeque<f64>,
}

impl SlidingStats {
    /// A sliding accumulator retaining the last `window` observations.
    /// Panics if `window` is 0.
    pub fn new(window: usize) -> Self {
        assert!(
            window > 0,
            "sliding window must hold at least 1 observation"
        );
        SlidingStats {
            window,
            buf: VecDeque::with_capacity(window),
        }
    }

    /// Adds one observation, evicting the oldest when the window is full.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "sliding observation {x} is not finite");
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(x);
    }

    /// Observations currently retained (≤ window).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Statistics over the retained window, as a [`Welford`] fold.
    pub fn stats(&self) -> Welford {
        let mut w = Welford::new();
        for &x in &self.buf {
            w.push(x);
        }
        w
    }
}

/// A live risk score: normalized impact × observed violation probability.
///
/// Observations are *final dispositions* — each either fine
/// ([`RealtimeRisk::record_ok`]) or a violation with a severity in
/// `[0, 1]` ([`RealtimeRisk::record_violation`]). The score multiplies the
/// mean severity of the violations seen (impact) by the fraction of
/// dispositions that were violations (probability), so it starts at 0,
/// stays in `[0, 1]`, and rises only with observed evidence — the shape of
/// KMamiz's `RiskAnalyzer.RealtimeRisk`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RealtimeRisk {
    observed: u64,
    violations: u64,
    severity_sum: f64,
}

impl RealtimeRisk {
    /// A score with no observations yet.
    pub fn new() -> Self {
        RealtimeRisk::default()
    }

    /// Records a disposition that met its obligation.
    pub fn record_ok(&mut self) {
        self.observed += 1;
    }

    /// Records a violation of severity `impact ∈ [0, 1]` (1 = the
    /// obligation was lost entirely, e.g. a rejection or abort; fractions
    /// grade partial failures such as bounded deadline overruns).
    pub fn record_violation(&mut self, impact: f64) {
        assert!(
            (0.0..=1.0).contains(&impact),
            "violation impact {impact} outside [0, 1]"
        );
        self.observed += 1;
        self.violations += 1;
        self.severity_sum += impact;
    }

    /// Folds another score's observations into this one.
    pub fn merge(&mut self, other: &RealtimeRisk) {
        self.observed += other.observed;
        self.violations += other.violations;
        self.severity_sum += other.severity_sum;
    }

    /// Dispositions observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Violations observed so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Observed violation probability: violations / observed; 0 when
    /// nothing has been observed.
    pub fn probability(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.violations as f64 / self.observed as f64
        }
    }

    /// Normalized impact: mean severity over the violations seen; 0 when
    /// none occurred.
    pub fn impact(&self) -> f64 {
        if self.violations == 0 {
            0.0
        } else {
            self.severity_sum / self.violations as f64
        }
    }

    /// The live risk score, `impact × probability ∈ [0, 1]`.
    pub fn score(&self) -> f64 {
        self.impact() * self.probability()
    }
}

/// Min-max normalizes a slice of risk scores across the entities being
/// compared (KMamiz's `Normalizer` step): the riskiest maps to 1, the
/// safest to 0. Degenerate inputs (all equal, or fewer than two entities)
/// map to 0.5 — equally ranked, no evidence of contrast.
pub fn normalize_scores(scores: &[f64]) -> Vec<f64> {
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if scores.len() < 2 || (max - min).abs() < 1e-12 {
        return vec![0.5; scores.len()];
    }
    scores.iter().map(|&s| (s - min) / (max - min)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separate::separate;
    use proptest::prelude::*;

    /// The naive two-pass mean/population-σ the property tests compare
    /// against.
    fn two_pass(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn empty_accumulator_is_defined() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_std(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn matches_hand_computation() {
        let mut w = Welford::new();
        for x in [0.0, 0.5, 1.0] {
            w.push(x);
        }
        assert!((w.mean() - 0.5).abs() < 1e-12);
        assert!((w.population_variance() - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(0.0));
        assert_eq!(w.max(), Some(1.0));
        let m = w.measure();
        assert!((m.performance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(0.25);
        w.push(0.75);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);
        let mut e = Welford::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn rejects_nan() {
        Welford::new().push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "at least one result")]
    fn empty_measure_panics() {
        Welford::new().measure();
    }

    #[test]
    #[should_panic(expected = "unnormalized")]
    fn unnormalized_measure_panics() {
        let mut w = Welford::new();
        w.push(42.0);
        w.measure();
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut s = SlidingStats::new(3);
        for x in [0.0, 0.0, 0.0, 1.0, 1.0, 1.0] {
            s.push(x);
        }
        assert_eq!(s.len(), 3);
        let w = s.stats();
        assert_eq!(w.mean(), 1.0);
        assert_eq!(w.population_std(), 0.0);
    }

    #[test]
    fn sliding_partial_window() {
        let mut s = SlidingStats::new(10);
        s.push(0.2);
        s.push(0.4);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!((s.stats().mean() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn realtime_risk_is_impact_times_probability() {
        let mut r = RealtimeRisk::new();
        assert_eq!(r.score(), 0.0);
        r.record_ok();
        r.record_ok();
        r.record_ok();
        r.record_violation(1.0);
        // probability 1/4, impact 1 -> score 0.25.
        assert!((r.probability() - 0.25).abs() < 1e-12);
        assert!((r.score() - 0.25).abs() < 1e-12);
        r.record_violation(0.5);
        // probability 2/5, impact 0.75 -> score 0.3.
        assert!((r.score() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn realtime_risk_merge_equals_single_stream() {
        let mut a = RealtimeRisk::new();
        a.record_ok();
        a.record_violation(0.25);
        let mut b = RealtimeRisk::new();
        b.record_violation(0.75);
        b.record_ok();
        b.record_ok();
        let mut merged = a;
        merged.merge(&b);
        let mut single = RealtimeRisk::new();
        single.record_ok();
        single.record_violation(0.25);
        single.record_violation(0.75);
        single.record_ok();
        single.record_ok();
        assert_eq!(merged, single);
    }

    #[test]
    fn normalize_scores_spans_unit_interval() {
        let mid = normalize_scores(&[0.1, 0.3, 0.2]);
        assert_eq!(mid[0], 0.0);
        assert_eq!(mid[1], 1.0);
        assert!((mid[2] - 0.5).abs() < 1e-12);
        assert_eq!(normalize_scores(&[0.4, 0.4]), vec![0.5, 0.5]);
        assert_eq!(normalize_scores(&[0.7]), vec![0.5]);
        assert_eq!(normalize_scores(&[]), Vec::<f64>::new());
    }

    proptest! {
        /// Streaming mean/σ equals the naive two-pass computation.
        #[test]
        fn welford_matches_two_pass(xs in prop::collection::vec(0.0f64..=1.0, 1..200)) {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            let (mean, std) = two_pass(&xs);
            prop_assert!((w.mean() - mean).abs() < 1e-9);
            prop_assert!((w.population_std() - std).abs() < 1e-9);
            prop_assert_eq!(w.count(), xs.len() as u64);
        }

        /// Streaming-final equals the batch oracle (Eqs. 5-6) within 1e-9.
        #[test]
        fn streaming_measure_matches_batch_separate(
            xs in prop::collection::vec(0.0f64..=1.0, 1..64),
        ) {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            let streamed = w.measure();
            let batch = separate(&xs);
            prop_assert!((streamed.performance - batch.performance).abs() < 1e-9,
                "performance {} vs {}", streamed.performance, batch.performance);
            prop_assert!((streamed.volatility - batch.volatility).abs() < 1e-9,
                "volatility {} vs {}", streamed.volatility, batch.volatility);
        }

        /// Merging partial accumulators equals pushing the concatenation —
        /// the primitive a sharded grid needs.
        #[test]
        fn merge_of_partials_matches_single_pass(
            xs in prop::collection::vec(0.0f64..=1.0, 0..100),
            ys in prop::collection::vec(0.0f64..=1.0, 0..100),
        ) {
            let mut a = Welford::new();
            for &x in &xs {
                a.push(x);
            }
            let mut b = Welford::new();
            for &y in &ys {
                b.push(y);
            }
            a.merge(&b);
            let mut whole = Welford::new();
            for &x in xs.iter().chain(&ys) {
                whole.push(x);
            }
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((a.population_std() - whole.population_std()).abs() < 1e-9);
            prop_assert_eq!(a.min(), whole.min());
            prop_assert_eq!(a.max(), whole.max());
        }

        /// A sliding window over the last `w` values agrees with a fresh
        /// accumulator over exactly those values.
        #[test]
        fn sliding_stats_match_suffix(
            xs in prop::collection::vec(0.0f64..=1.0, 1..80),
            window in 1usize..16,
        ) {
            let mut s = SlidingStats::new(window);
            for &x in &xs {
                s.push(x);
            }
            let tail = &xs[xs.len().saturating_sub(window)..];
            let mut w = Welford::new();
            for &x in tail {
                w.push(x);
            }
            prop_assert_eq!(s.stats(), w);
        }
    }
}
