//! # ccs-risk — separate and integrated risk analysis
//!
//! The primary contribution of Yeo & Buyya, *Integrated Risk Analysis for a
//! Commercial Computing Service* (IPDPS 2007): a pair of simple, intuitive
//! evaluation methods that grade resource-management policies against the
//! four essential objectives of a commercial computing service.
//!
//! This crate is deliberately **independent of the simulator**: it consumes
//! plain `f64` objective measurements, so it can assess any system that can
//! report the four objectives (or indeed any normalized performance
//! figures).
//!
//! The pipeline:
//!
//! 1. Measure raw objective values ([`Objective`], paper Section 3) for
//!    every policy at every experiment point of a scenario.
//! 2. [`normalize`](crate::normalize::normalize) them to `[0, 1]`
//!    (1 = best).
//! 3. [`separate`](crate::separate::separate) risk analysis per objective
//!    per scenario → a [`RiskMeasure`] (performance `μ`, volatility `σ`).
//! 4. [`integrated`](crate::integrated::integrated) risk analysis over a
//!    weighted combination of objectives.
//! 5. Collect per-policy points into a [`RiskPlot`], fit
//!    [trend lines](crate::trend), and [rank](crate::rank::rank) policies by
//!    best performance or best volatility.
//!
//! ```
//! use ccs_risk::{normalize, separate, integrated, Objective, RiskMeasure};
//!
//! // Six SLA percentages from a six-value scenario sweep for one policy:
//! let sla = normalize::normalize(Objective::Sla, &[88.0, 92.0, 85.0, 90.0, 91.0, 86.0]);
//! let sla_risk = separate::separate(&sla);
//! assert!(sla_risk.performance > 0.8 && sla_risk.volatility < 0.05);
//!
//! // Integrate with a perfect-reliability measure at equal weights:
//! let combo = integrated::integrated_equal(&[sla_risk, RiskMeasure::IDEAL]);
//! assert!(combo.performance > sla_risk.performance);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod bootstrap;
pub mod car;
pub mod dominance;
pub mod integrated;
pub mod measure;
pub mod normalize;
pub mod objective;
pub mod plot;
pub mod rank;
pub mod report;
pub mod separate;
pub mod stream;
pub mod svg;
pub mod trend;

pub use apriori::{
    forecast, kendall_tau, pareto_front, uniform_mix, weight_sensitivity, Sensitivity,
};
pub use bootstrap::{bootstrap_separate, BootstrapResult, Interval};
pub use car::{car, car_ratio, CarAnalysis, CarMetric};
pub use dominance::{dominance_matrix, dominates, paired_wins, Dominance};
pub use integrated::{integrated, integrated_equal};
pub use measure::RiskMeasure;
pub use normalize::{normalize_wait_with, normalize_with, WaitNormalization};
pub use objective::{Better, Focus, Objective};
pub use plot::{sample_figure1, Extrema, PolicySeries, RiskPlot};
pub use rank::{rank, RankBy, RankedPolicy};
pub use separate::separate;
pub use stream::{normalize_scores, RealtimeRisk, SlidingStats, Welford};
pub use trend::{Gradient, TrendLine};
