//! Integrated risk analysis (paper Section 4.2, Eqs. 7–8).
//!
//! Combines the separate risk measures of several objectives into one,
//! through objective weights `w_i` with `0 ≤ w_i ≤ 1` and `Σ w_i = 1`:
//!
//! ```text
//! μ_int = Σ w_i · μ_sep,i        (Eq. 7)
//! σ_int = Σ w_i · σ_sep,i        (Eq. 8)
//! ```
//!
//! Weights let a provider prioritize objectives; the paper's experiments use
//! equal weights (1/3 for three objectives, 1/4 for all four).

use crate::measure::RiskMeasure;

/// Tolerance on `Σ w_i = 1`.
const WEIGHT_EPS: f64 = 1e-9;

/// Integrates separate risk measures under explicit weights.
///
/// Panics unless every weight is in `[0, 1]` and the weights sum to 1.
pub fn integrated(parts: &[(RiskMeasure, f64)]) -> RiskMeasure {
    assert!(
        !parts.is_empty(),
        "integration needs at least one objective"
    );
    let total: f64 = parts.iter().map(|(_, w)| *w).sum();
    assert!(
        (total - 1.0).abs() < WEIGHT_EPS,
        "objective weights must sum to 1 (got {total})"
    );
    let mut perf = 0.0;
    let mut vol = 0.0;
    for (m, w) in parts {
        assert!(
            (0.0..=1.0 + WEIGHT_EPS).contains(w),
            "weight {w} outside [0, 1]"
        );
        perf += w * m.performance;
        vol += w * m.volatility;
    }
    RiskMeasure {
        performance: perf,
        volatility: vol,
    }
}

/// Integrates with the paper's equal weights (`1/n` each).
pub fn integrated_equal(measures: &[RiskMeasure]) -> RiskMeasure {
    let w = 1.0 / measures.len() as f64;
    let parts: Vec<(RiskMeasure, f64)> = measures.iter().map(|m| (*m, w)).collect();
    integrated(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_average() {
        let a = RiskMeasure::new(1.0, 0.0);
        let b = RiskMeasure::new(0.5, 0.2);
        let c = RiskMeasure::new(0.0, 0.4);
        let m = integrated_equal(&[a, b, c]);
        assert!((m.performance - 0.5).abs() < 1e-12);
        assert!((m.volatility - 0.2).abs() < 1e-12);
    }

    #[test]
    fn custom_weights_shift_the_blend() {
        let good = RiskMeasure::new(1.0, 0.0);
        let bad = RiskMeasure::new(0.0, 0.5);
        let m = integrated(&[(good, 0.9), (bad, 0.1)]);
        assert!((m.performance - 0.9).abs() < 1e-12);
        assert!((m.volatility - 0.05).abs() < 1e-12);
    }

    #[test]
    fn integration_of_ideals_is_ideal() {
        let m = integrated_equal(&[RiskMeasure::IDEAL; 4]);
        assert_eq!(m, RiskMeasure::IDEAL);
    }

    #[test]
    fn integrated_is_convex_combination() {
        // The integrated measure lies within the min/max of its parts.
        let parts = [
            RiskMeasure::new(0.2, 0.1),
            RiskMeasure::new(0.7, 0.3),
            RiskMeasure::new(0.9, 0.05),
        ];
        let m = integrated_equal(&parts);
        assert!(m.performance >= 0.2 && m.performance <= 0.9);
        assert!(m.volatility >= 0.05 && m.volatility <= 0.3);
    }

    #[test]
    #[should_panic]
    fn rejects_weights_not_summing_to_one() {
        integrated(&[(RiskMeasure::IDEAL, 0.5), (RiskMeasure::IDEAL, 0.3)]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        integrated(&[]);
    }

    #[test]
    fn paper_equal_weights() {
        // 3 objectives -> 1/3 each; 4 objectives -> 1/4 each.
        let m3 = integrated_equal(&[RiskMeasure::new(0.9, 0.0); 3]);
        assert!((m3.performance - 0.9).abs() < 1e-12);
        let m4 = integrated_equal(&[RiskMeasure::new(0.9, 0.1); 4]);
        assert!((m4.volatility - 0.1).abs() < 1e-12);
    }
}
