//! Separate risk analysis (paper Section 4.1, Eqs. 5–6).
//!
//! For a single objective in a particular scenario — a sweep over `n`
//! values of one experimental parameter — the performance is the mean of
//! the `n` normalized results and the volatility is their **population**
//! standard deviation:
//!
//! ```text
//! μ_sep = (Σ normalized_i) / n                               (Eq. 5)
//! σ_sep = sqrt( (Σ normalized_i²) / n − μ_sep² )             (Eq. 6)
//! ```

use crate::measure::RiskMeasure;

/// Computes the separate risk analysis of one objective for one scenario
/// from its normalized experiment results (each in `[0, 1]`).
///
/// Panics if `normalized` is empty or any value falls outside `[0, 1]`
/// (normalization must happen first — see [`crate::normalize`]).
pub fn separate(normalized: &[f64]) -> RiskMeasure {
    assert!(
        !normalized.is_empty(),
        "separate risk analysis needs at least one result"
    );
    for &x in normalized {
        assert!(
            (0.0..=1.0).contains(&x),
            "normalized result {x} outside [0, 1]"
        );
    }
    let n = normalized.len() as f64;
    let mean = normalized.iter().sum::<f64>() / n;
    let mean_sq = normalized.iter().map(|x| x * x).sum::<f64>() / n;
    // Guard the subtraction against tiny negative rounding.
    let var = (mean_sq - mean * mean).max(0.0);
    RiskMeasure {
        performance: mean,
        volatility: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_results_have_zero_volatility() {
        let m = separate(&[0.8; 6]);
        assert!((m.performance - 0.8).abs() < 1e-12);
        assert!(m.volatility < 1e-7, "volatility {}", m.volatility);
    }

    #[test]
    fn ideal_policy() {
        let m = separate(&[1.0; 5]);
        assert_eq!(m, RiskMeasure::IDEAL);
    }

    #[test]
    fn eq5_eq6_match_hand_computation() {
        // results: 0, 0.5, 1 -> mean 0.5, var = (0+0.25+1)/3 - 0.25 = 1/6.
        let m = separate(&[0.0, 0.5, 1.0]);
        assert!((m.performance - 0.5).abs() < 1e-12);
        assert!((m.volatility - (1.0f64 / 6.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn volatility_is_population_not_sample() {
        // Two points 0 and 1: population sd = 0.5 (sample sd would be ~0.707).
        let m = separate(&[0.0, 1.0]);
        assert!((m.volatility - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_result_is_legal() {
        let m = separate(&[0.3]);
        assert_eq!(m.performance, 0.3);
        assert_eq!(m.volatility, 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_unnormalized_input() {
        separate(&[0.5, 42.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_input() {
        separate(&[]);
    }

    #[test]
    fn volatility_bounded_by_half() {
        // For values in [0,1] the population sd is at most 0.5.
        let m = separate(&[0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        assert!(m.volatility <= 0.5 + 1e-12);
    }
}
