//! A-priori risk analysis — forecasting risk for *future* situations.
//!
//! The paper closes by noting that its (a posteriori) evaluation results
//! "can later be used to generate an a priori risk analysis of policies by
//! identifying possible risks for future utility computing situations".
//! This module implements that step:
//!
//! - [`forecast`] — given the measured per-scenario risk of a policy and a
//!   probability mix over scenarios (how likely each operating condition is
//!   expected to be), produce the policy's *expected* risk measure. The
//!   forecast volatility uses the law of total variance, so both
//!   within-scenario volatility and between-scenario performance dispersion
//!   are accounted for.
//! - [`weight_sensitivity`] — sweep the importance weight of one objective
//!   (the provider's knob from paper Section 4.2) and report which policy
//!   is best at every weighting, including the crossover points where the
//!   recommendation flips.
//! - [`pareto_front`] — the set of policies not dominated in the
//!   (performance ↑, volatility ↓) plane; everything off the front is never
//!   the right choice for any risk appetite.
//! - [`kendall_tau`] — rank correlation between two policy orderings (e.g.
//!   best-performance vs best-volatility), quantifying how much the choice
//!   of ranking criterion matters.

use crate::integrated::integrated;
use crate::measure::RiskMeasure;
use serde::{Deserialize, Serialize};

/// Expected risk of one policy under a probability mix over scenarios.
///
/// `scenario_risk[s]` is the policy's measured (a posteriori) separate or
/// integrated risk in scenario `s`; `mix[s]` is the anticipated probability
/// of operating under scenario `s` (must sum to 1).
///
/// Forecast performance is the mixture mean; forecast volatility follows
/// the law of total variance:
/// `σ² = Σ p_s σ_s²  +  Σ p_s (μ_s − μ̄)²`.
pub fn forecast(scenario_risk: &[RiskMeasure], mix: &[f64]) -> RiskMeasure {
    assert_eq!(
        scenario_risk.len(),
        mix.len(),
        "one probability per scenario"
    );
    assert!(!mix.is_empty(), "forecast needs at least one scenario");
    let total: f64 = mix.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "scenario probabilities must sum to 1 (got {total})"
    );
    assert!(mix.iter().all(|&p| p >= 0.0), "probabilities must be >= 0");

    let mean: f64 = scenario_risk
        .iter()
        .zip(mix)
        .map(|(m, p)| p * m.performance)
        .sum();
    let within: f64 = scenario_risk
        .iter()
        .zip(mix)
        .map(|(m, p)| p * m.volatility * m.volatility)
        .sum();
    let between: f64 = scenario_risk
        .iter()
        .zip(mix)
        .map(|(m, p)| p * (m.performance - mean) * (m.performance - mean))
        .sum();
    RiskMeasure {
        performance: mean,
        volatility: (within + between).sqrt(),
    }
}

/// Uniform scenario mix of length `n`.
pub fn uniform_mix(n: usize) -> Vec<f64> {
    assert!(n > 0);
    vec![1.0 / n as f64; n]
}

/// One row of a weight-sensitivity sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Weight assigned to the objective under study (the rest of the weight
    /// is split equally among the other objectives).
    pub weight: f64,
    /// Name of the best policy at this weighting.
    pub best: String,
    /// The best policy's integrated measure at this weighting.
    pub measure: RiskMeasure,
}

/// Result of [`weight_sensitivity`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sensitivity {
    /// The sweep, in increasing weight order.
    pub points: Vec<SensitivityPoint>,
    /// Weights at which the recommended policy changes (midpoint of the
    /// bracketing sweep steps).
    pub crossovers: Vec<f64>,
}

/// Sweeps the importance weight of objective `focus` (index into each
/// policy's measure array) from 0 to 1 in `steps` increments, integrating
/// the remaining objectives at equal residual weights, and reports the best
/// policy (highest integrated performance, ties broken by lower volatility)
/// at each point.
///
/// `policies` maps a name to its per-objective separate risk measures (all
/// policies must provide the same number of objectives, ≥ 2).
pub fn weight_sensitivity(
    policies: &[(String, Vec<RiskMeasure>)],
    focus: usize,
    steps: usize,
) -> Sensitivity {
    assert!(steps >= 2, "need at least two sweep steps");
    assert!(!policies.is_empty());
    let k = policies[0].1.len();
    assert!(k >= 2, "sensitivity needs at least two objectives");
    assert!(focus < k, "focus objective out of range");
    for (name, ms) in policies {
        assert_eq!(ms.len(), k, "policy {name} has a different objective count");
    }

    let mut points = Vec::with_capacity(steps);
    for i in 0..steps {
        let w = i as f64 / (steps - 1) as f64;
        let rest = (1.0 - w) / (k - 1) as f64;
        let mut best: Option<(&str, RiskMeasure)> = None;
        for (name, ms) in policies {
            let parts: Vec<(RiskMeasure, f64)> = ms
                .iter()
                .enumerate()
                .map(|(j, m)| (*m, if j == focus { w } else { rest }))
                .collect();
            let m = integrated(&parts);
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    m.performance > b.performance + 1e-12
                        || ((m.performance - b.performance).abs() <= 1e-12
                            && m.volatility < b.volatility)
                }
            };
            if better {
                best = Some((name, m));
            }
        }
        let (name, measure) = best.expect("at least one policy");
        points.push(SensitivityPoint {
            weight: w,
            best: name.to_string(),
            measure,
        });
    }

    let crossovers = points
        .windows(2)
        .filter(|w| w[0].best != w[1].best)
        .map(|w| (w[0].weight + w[1].weight) / 2.0)
        .collect();
    Sensitivity { points, crossovers }
}

/// Returns the indices of the policies on the Pareto front of the
/// (performance ↑, volatility ↓) plane: no other policy has both higher (or
/// equal) performance and lower (or equal) volatility with at least one
/// strict improvement.
pub fn pareto_front(measures: &[RiskMeasure]) -> Vec<usize> {
    (0..measures.len())
        .filter(|&i| {
            !measures.iter().enumerate().any(|(j, other)| {
                j != i
                    && other.performance >= measures[i].performance
                    && other.volatility <= measures[i].volatility
                    && (other.performance > measures[i].performance
                        || other.volatility < measures[i].volatility)
            })
        })
        .collect()
}

/// Kendall rank-correlation coefficient τ between two orderings of the same
/// item set (each a list of names, best first). Returns a value in
/// [−1, 1]: 1 = identical order, −1 = exactly reversed.
///
/// Panics if the orderings are not permutations of each other.
pub fn kendall_tau(a: &[String], b: &[String]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let pos_b = |name: &str| {
        b.iter()
            .position(|x| x == name)
            .unwrap_or_else(|| panic!("{name} missing from second ranking"))
    };
    let ranks: Vec<usize> = a.iter().map(|name| pos_b(name)).collect();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            if ranks[i] < ranks[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(p: f64, v: f64) -> RiskMeasure {
        RiskMeasure::new(p, v)
    }

    #[test]
    fn forecast_of_identical_scenarios_is_identity() {
        let risk = vec![m(0.8, 0.1); 4];
        let f = forecast(&risk, &uniform_mix(4));
        assert!((f.performance - 0.8).abs() < 1e-12);
        assert!((f.volatility - 0.1).abs() < 1e-12);
    }

    #[test]
    fn forecast_adds_between_scenario_dispersion() {
        // Two scenarios with zero within-volatility but different means:
        // the forecast volatility must capture the spread.
        let risk = [m(1.0, 0.0), m(0.0, 0.0)];
        let f = forecast(&risk, &[0.5, 0.5]);
        assert!((f.performance - 0.5).abs() < 1e-12);
        assert!(
            (f.volatility - 0.5).abs() < 1e-12,
            "between-variance = 0.25"
        );
    }

    #[test]
    fn forecast_weights_scenarios_by_probability() {
        let risk = [m(1.0, 0.0), m(0.0, 0.0)];
        let f = forecast(&risk, &[0.9, 0.1]);
        assert!((f.performance - 0.9).abs() < 1e-12);
        // total var = 0.9*0.01... within=0; between = .9*(.1)^2+.1*(.9)^2 = 0.09.
        assert!((f.volatility - 0.09f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn forecast_rejects_bad_mix() {
        forecast(&[m(1.0, 0.0)], &[0.5]);
    }

    #[test]
    fn sensitivity_finds_crossover() {
        // "Steady" wins on objective 0, "Spiky" wins on objective 1: the
        // recommendation must flip as the focus weight rises.
        let policies = vec![
            ("Steady".to_string(), vec![m(0.4, 0.0), m(0.9, 0.0)]),
            ("Spiky".to_string(), vec![m(0.8, 0.0), m(0.3, 0.0)]),
        ];
        let s = weight_sensitivity(&policies, 0, 21);
        assert_eq!(s.points.first().unwrap().best, "Steady");
        assert_eq!(s.points.last().unwrap().best, "Spiky");
        assert_eq!(s.crossovers.len(), 1);
        // Crossover where 0.4w+0.9(1-w) = 0.8w+0.3(1-w) -> w = 0.6.
        assert!((s.crossovers[0] - 0.6).abs() < 0.06);
    }

    #[test]
    fn sensitivity_stable_when_one_policy_dominates() {
        let policies = vec![
            ("Best".to_string(), vec![m(0.9, 0.0), m(0.9, 0.0)]),
            ("Worse".to_string(), vec![m(0.5, 0.0), m(0.5, 0.0)]),
        ];
        let s = weight_sensitivity(&policies, 1, 11);
        assert!(s.crossovers.is_empty());
        assert!(s.points.iter().all(|p| p.best == "Best"));
    }

    #[test]
    fn sensitivity_ties_break_toward_lower_volatility() {
        let policies = vec![
            ("Volatile".to_string(), vec![m(0.7, 0.4), m(0.7, 0.4)]),
            ("Calm".to_string(), vec![m(0.7, 0.1), m(0.7, 0.1)]),
        ];
        let s = weight_sensitivity(&policies, 0, 5);
        assert!(s.points.iter().all(|p| p.best == "Calm"));
    }

    #[test]
    fn pareto_front_drops_dominated_policies() {
        let ms = [
            m(0.9, 0.3),  // A: front (best perf)
            m(0.7, 0.1),  // B: front (best vol among high perf)
            m(0.6, 0.2),  // C: dominated by B
            m(0.5, 0.05), // D: front (lowest vol)
            m(0.5, 0.5),  // E: dominated by everything useful
        ];
        assert_eq!(pareto_front(&ms), vec![0, 1, 3]);
    }

    #[test]
    fn pareto_front_of_single_point_is_itself() {
        assert_eq!(pareto_front(&[m(0.1, 0.5)]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn pareto_duplicates_both_survive() {
        let ms = [m(0.5, 0.2), m(0.5, 0.2)];
        assert_eq!(
            pareto_front(&ms),
            vec![0, 1],
            "equal points do not dominate each other"
        );
    }

    #[test]
    fn kendall_tau_extremes() {
        let a: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let rev: Vec<String> = a.iter().rev().cloned().collect();
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
    }

    #[test]
    fn kendall_tau_partial_agreement() {
        let a: Vec<String> = ["1", "2", "3", "4"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = ["1", "2", "4", "3"].iter().map(|s| s.to_string()).collect();
        // 5 concordant, 1 discordant of 6 pairs -> tau = 4/6.
        assert!((kendall_tau(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn paper_rankings_tau() {
        // Tables III vs IV of the paper: mostly concordant orderings.
        let t3: Vec<String> = ["A", "B", "E", "G", "F", "C", "D", "H"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let t4: Vec<String> = ["A", "E", "B", "F", "G", "C", "D", "H"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tau = kendall_tau(&t3, &t4);
        assert!(tau > 0.8, "the two criteria mostly agree: {tau}");
    }
}
