//! The four essential objectives of a commercial computing service
//! (paper Section 3, Table I).

use serde::{Deserialize, Serialize};

/// Whose interest an objective serves (paper Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum Focus {
    /// Influences service users (wait, SLA, reliability).
    UserCentric,
    /// Affects only the computing service (profitability).
    ProviderCentric,
}

/// Which direction of a raw measurement is better.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum Better {
    /// Lower raw values are better (wait time).
    Lower,
    /// Higher raw values are better (the three percentage objectives).
    Higher,
}

/// One of the four objectives a commercial computing service must achieve to
/// support utility computing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum Objective {
    /// Manage wait time for SLA acceptance (Eq. 1) — mean seconds between
    /// submission and execution start, over fulfilled jobs.
    Wait,
    /// Meet SLA requests (Eq. 2) — % of submitted jobs fulfilled.
    Sla,
    /// Ensure reliability of accepted SLA (Eq. 3) — % of accepted jobs
    /// fulfilled.
    Reliability,
    /// Attain profitability (Eq. 4) — utility earned as % of total budget.
    Profitability,
}

impl Objective {
    /// All four, in paper order.
    pub const ALL: [Objective; 4] = [
        Objective::Wait,
        Objective::Sla,
        Objective::Reliability,
        Objective::Profitability,
    ];

    /// The paper's abbreviation (Table I).
    pub fn abbrev(self) -> &'static str {
        match self {
            Objective::Wait => "wait",
            Objective::Sla => "SLA",
            Objective::Reliability => "reliability",
            Objective::Profitability => "profitability",
        }
    }

    /// Full description (Table I).
    pub fn description(self) -> &'static str {
        match self {
            Objective::Wait => "Manage wait time for SLA acceptance",
            Objective::Sla => "Meet SLA requests",
            Objective::Reliability => "Ensure reliability of accepted SLA",
            Objective::Profitability => "Attain profitability",
        }
    }

    /// User- or provider-centric (Table I).
    pub fn focus(self) -> Focus {
        match self {
            Objective::Profitability => Focus::ProviderCentric,
            _ => Focus::UserCentric,
        }
    }

    /// Direction of goodness of the raw measure.
    pub fn better(self) -> Better {
        match self {
            Objective::Wait => Better::Lower,
            _ => Better::Higher,
        }
    }

    /// The 3-objective combinations of the integrated analysis, each
    /// omitting one objective (paper Figures 4 and 7), keyed by the omitted
    /// objective.
    pub fn triples() -> [(Objective, [Objective; 3]); 4] {
        [
            (
                Objective::Wait,
                [
                    Objective::Sla,
                    Objective::Reliability,
                    Objective::Profitability,
                ],
            ),
            (
                Objective::Sla,
                [
                    Objective::Wait,
                    Objective::Reliability,
                    Objective::Profitability,
                ],
            ),
            (
                Objective::Reliability,
                [Objective::Wait, Objective::Sla, Objective::Profitability],
            ),
            (
                Objective::Profitability,
                [Objective::Wait, Objective::Sla, Objective::Reliability],
            ),
        ]
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_reproduced() {
        assert_eq!(Objective::ALL.len(), 4);
        let user: Vec<_> = Objective::ALL
            .iter()
            .filter(|o| o.focus() == Focus::UserCentric)
            .collect();
        assert_eq!(user.len(), 3);
        assert_eq!(Objective::Profitability.focus(), Focus::ProviderCentric);
        assert_eq!(Objective::Wait.better(), Better::Lower);
        assert_eq!(Objective::Sla.better(), Better::Higher);
        assert_eq!(Objective::Wait.abbrev(), "wait");
        assert!(Objective::Reliability
            .description()
            .contains("reliability of accepted SLA"));
    }

    #[test]
    fn triples_each_omit_one() {
        for (omitted, triple) in Objective::triples() {
            assert!(!triple.contains(&omitted));
            assert_eq!(triple.len(), 3);
            // The triple plus the omitted one is the full set.
            let mut all: Vec<Objective> = triple.to_vec();
            all.push(omitted);
            for o in Objective::ALL {
                assert!(all.contains(&o));
            }
        }
    }
}
