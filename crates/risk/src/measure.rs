//! The (performance, volatility) pair — the paper's two evaluation
//! indicators (Section 4): performance is the value measure of a policy,
//! volatility the risk measure.

use serde::{Deserialize, Serialize};

/// Performance/volatility of one policy for one objective (or combination)
/// in one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RiskMeasure {
    /// `μ` — mean normalized result over the scenario's experiment points
    /// (higher is better; range `[0, 1]`).
    pub performance: f64,
    /// `σ` — population standard deviation of the normalized results
    /// (lower is better; range `[0, 0.5]` for values in `[0, 1]`).
    pub volatility: f64,
}

impl RiskMeasure {
    /// The ideal measure: perfect performance with zero volatility.
    pub const IDEAL: RiskMeasure = RiskMeasure {
        performance: 1.0,
        volatility: 0.0,
    };

    /// Creates a measure; panics if either value is NaN or negative.
    pub fn new(performance: f64, volatility: f64) -> Self {
        assert!(performance.is_finite() && volatility.is_finite());
        assert!(performance >= 0.0 && volatility >= 0.0);
        RiskMeasure {
            performance,
            volatility,
        }
    }

    /// Euclidean distance to another measure in the (volatility,
    /// performance) plane — used for the concentration tie-break in policy
    /// ranking (paper Section 4.3, the C-vs-D comparison).
    pub fn distance(&self, other: &RiskMeasure) -> f64 {
        let dp = self.performance - other.performance;
        let dv = self.volatility - other.volatility;
        (dp * dp + dv * dv).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_one_zero() {
        assert_eq!(RiskMeasure::IDEAL.performance, 1.0);
        assert_eq!(RiskMeasure::IDEAL.volatility, 0.0);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = RiskMeasure::new(1.0, 0.0);
        let b = RiskMeasure::new(0.0, 0.0);
        assert_eq!(a.distance(&b), 1.0);
        let c = RiskMeasure::new(0.7, 0.4);
        assert!((c.distance(&RiskMeasure::new(0.7, 0.3)) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        RiskMeasure::new(f64::NAN, 0.0);
    }
}
