//! Policy ranking over a risk analysis plot (paper Section 4.3,
//! Tables III & IV).
//!
//! Two orderings exist:
//!
//! - **Best performance** (Table III): (i) maximum performance ↓,
//!   (ii) minimum volatility ↑, (iii) performance difference ↑,
//!   (iv) volatility difference ↑, (v) gradient preference
//!   (decreasing, increasing, zero), and finally (vi) point concentration
//!   near the policy's best corner (the paper's C-before-D argument).
//! - **Best volatility** (Table IV): volatility is considered before
//!   performance: (i) minimum volatility ↑, (ii) maximum performance ↓,
//!   (iii) volatility difference ↑, (iv) performance difference ↑,
//!   (v) gradient, (vi) concentration.

use crate::plot::{PolicySeries, RiskPlot};
use crate::trend::Gradient;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// One row of a ranking table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankedPolicy {
    /// 1-based rank.
    pub rank: usize,
    /// Policy name.
    pub name: String,
    /// Maximum performance across scenarios.
    pub max_performance: f64,
    /// Minimum volatility across scenarios.
    pub min_volatility: f64,
    /// Performance difference (max − min).
    pub performance_difference: f64,
    /// Volatility difference (max − min).
    pub volatility_difference: f64,
    /// Trend-line gradient classification.
    pub gradient: Gradient,
    /// Concentration tie-break value (lower = tighter cluster at the best
    /// corner).
    pub concentration: f64,
}

/// Which criterion leads the ranking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RankBy {
    /// Table III ordering.
    BestPerformance,
    /// Table IV ordering.
    BestVolatility,
}

fn keys(series: &PolicySeries) -> RankedPolicy {
    let e = series.extrema();
    RankedPolicy {
        rank: 0,
        name: series.name.clone(),
        max_performance: e.max_performance,
        min_volatility: e.min_volatility,
        performance_difference: e.performance_difference(),
        volatility_difference: e.volatility_difference(),
        gradient: series.gradient(),
        concentration: series.concentration(),
    }
}

fn cmp_chain(pairs: &[(f64, f64)]) -> Ordering {
    for (a, b) in pairs {
        match a.total_cmp(b) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Ranks the plot's policies. Ties after all six criteria break by name so
/// the output order is total and deterministic.
pub fn rank(plot: &RiskPlot, by: RankBy) -> Vec<RankedPolicy> {
    let mut rows: Vec<RankedPolicy> = plot.series.iter().map(keys).collect();
    rows.sort_by(|a, b| {
        let primary = match by {
            RankBy::BestPerformance => cmp_chain(&[
                (b.max_performance, a.max_performance), // higher first
                (a.min_volatility, b.min_volatility),   // lower first
                (a.performance_difference, b.performance_difference),
                (a.volatility_difference, b.volatility_difference),
            ]),
            RankBy::BestVolatility => cmp_chain(&[
                (a.min_volatility, b.min_volatility),
                (b.max_performance, a.max_performance),
                (a.volatility_difference, b.volatility_difference),
                (a.performance_difference, b.performance_difference),
            ]),
        };
        primary
            .then(a.gradient.preference().cmp(&b.gradient.preference()))
            .then(a.concentration.total_cmp(&b.concentration))
            .then(a.name.cmp(&b.name))
    });
    for (i, r) in rows.iter_mut().enumerate() {
        r.rank = i + 1;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::sample_figure1;

    fn order(by: RankBy) -> Vec<String> {
        rank(&sample_figure1(), by)
            .into_iter()
            .map(|r| r.name)
            .collect()
    }

    #[test]
    fn table_iii_best_performance_order() {
        // Applying the paper's stated rules to the Figure 1 sample:
        // A (ideal), B (0.9), then the 0.7-tier broken by min volatility
        // (E: 0.1), then perf difference (G: 0.3 < 0.5), then vol difference
        // (F: 0.4 < 0.7), then gradient (C, D decreasing before H
        // increasing), then concentration (C before D).
        assert_eq!(
            order(RankBy::BestPerformance),
            ["A", "B", "E", "G", "F", "C", "D", "H"]
        );
    }

    #[test]
    fn table_iv_best_volatility_order() {
        // Paper Table IV: A, E, B, F, G, C, D, H.
        assert_eq!(
            order(RankBy::BestVolatility),
            ["A", "E", "B", "F", "G", "C", "D", "H"]
        );
    }

    #[test]
    fn ranks_are_dense_and_one_based() {
        let rows = rank(&sample_figure1(), RankBy::BestPerformance);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
        }
    }

    #[test]
    fn ranking_row_carries_table_columns() {
        let rows = rank(&sample_figure1(), RankBy::BestVolatility);
        let e = rows.iter().find(|r| r.name == "E").unwrap();
        assert_eq!(e.rank, 2);
        assert!((e.min_volatility - 0.1).abs() < 1e-9);
        assert!((e.max_performance - 0.7).abs() < 1e-9);
        assert!((e.volatility_difference - 0.2).abs() < 1e-9);
        assert!((e.performance_difference - 0.2).abs() < 1e-9);
        assert_eq!(e.gradient, Gradient::Decreasing);
    }

    #[test]
    fn deterministic_on_exact_ties() {
        use crate::measure::RiskMeasure;
        use crate::plot::PolicySeries;
        let twin = |name: &str| {
            PolicySeries::new(
                name,
                vec![RiskMeasure::new(0.5, 0.2), RiskMeasure::new(0.6, 0.3)],
            )
        };
        let plot = RiskPlot::new("ties", vec![twin("Z"), twin("Y")]);
        let rows = rank(&plot, RankBy::BestPerformance);
        assert_eq!(rows[0].name, "Y", "name breaks exact ties");
        assert_eq!(rows[1].name, "Z");
    }
}
