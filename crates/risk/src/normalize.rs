//! Normalization of raw objective measurements to `[0, 1]`.
//!
//! The journal revision of the paper evaluates *normalized* results so the
//! risk-analysis plots are standardized: 0 is the worst possible
//! performance, 1 the best (Section 4.1). The three percentage objectives
//! have natural bounds, so they normalize alone; the `wait` objective has no
//! upper bound, so it normalizes *relative to the policies being compared at
//! the same experiment point* (see DESIGN.md §5.4):
//!
//! - `SLA`, `reliability`, `profitability`: `norm = value / 100`.
//! - `wait`: `norm = 1 − wait / max(wait over compared policies)`; when every
//!   policy has zero wait, all normalize to the ideal 1.

use crate::objective::{Better, Objective};
use serde::{Deserialize, Serialize};

/// How the unbounded `wait` objective is mapped to `[0, 1]`.
///
/// The journal text states results are normalized but omits the formula for
/// `wait`; EXPERIMENTS.md documents that the choice materially affects the
/// integrated Set B comparisons (deviation #1). All three defensible
/// schemes are provided; [`WaitNormalization::RelativeToWorst`] is the
/// default used throughout the reproduction, and
/// `ccs-experiments::wait_normalization_study` measures how the paper's
/// conclusions move under each.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize, Default)]
pub enum WaitNormalization {
    /// `1 − w / max(w over compared policies)`: the worst policy at each
    /// experiment point anchors 0 (the reproduction default).
    #[default]
    RelativeToWorst,
    /// `(max − w) / (max − min)`: min-max across the compared policies;
    /// all-equal points normalize to 1.
    MinMax,
    /// `1 / (1 + w/scale)`: absolute, policy-independent; `scale` is the
    /// wait regarded as "half bad" (e.g. the mean job runtime).
    Reciprocal {
        /// Wait (seconds) that maps to 0.5.
        scale: f64,
    },
}

/// Normalizes a cross-policy vector of `wait` measurements under an
/// explicit scheme.
pub fn normalize_wait_with(waits: &[f64], scheme: WaitNormalization) -> Vec<f64> {
    match scheme {
        WaitNormalization::RelativeToWorst => normalize_wait(waits),
        WaitNormalization::MinMax => {
            let max = waits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = waits.iter().cloned().fold(f64::INFINITY, f64::min);
            if waits.is_empty() {
                return Vec::new();
            }
            if (max - min).abs() < 1e-12 {
                return vec![1.0; waits.len()];
            }
            waits
                .iter()
                .map(|w| ((max - w) / (max - min)).clamp(0.0, 1.0))
                .collect()
        }
        WaitNormalization::Reciprocal { scale } => {
            assert!(scale > 0.0, "Reciprocal scale must be positive");
            waits
                .iter()
                .map(|w| 1.0 / (1.0 + w.max(0.0) / scale))
                .collect()
        }
    }
}

/// Normalizes raw measurements of `objective` under an explicit wait
/// scheme (the percentage objectives are unaffected by the scheme).
pub fn normalize_with(objective: Objective, raw: &[f64], scheme: WaitNormalization) -> Vec<f64> {
    match objective.better() {
        Better::Lower => normalize_wait_with(raw, scheme),
        Better::Higher => raw.iter().map(|&v| normalize_percent(v)).collect(),
    }
}

/// Normalizes one percentage-valued objective measurement.
///
/// Panics in debug builds if `pct` is NaN; clamps to `[0, 100]` otherwise.
pub fn normalize_percent(pct: f64) -> f64 {
    debug_assert!(!pct.is_nan());
    (pct / 100.0).clamp(0.0, 1.0)
}

/// Normalizes a cross-policy vector of `wait` measurements (seconds) taken
/// at the same experiment point.
pub fn normalize_wait(waits: &[f64]) -> Vec<f64> {
    let max = waits.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return vec![1.0; waits.len()];
    }
    waits
        .iter()
        .map(|w| 1.0 - (w / max).clamp(0.0, 1.0))
        .collect()
}

/// Normalizes a cross-policy vector of raw measurements of `objective`
/// taken at the same experiment point. Output values are in `[0, 1]` with 1
/// best, regardless of the objective's raw direction.
pub fn normalize(objective: Objective, raw: &[f64]) -> Vec<f64> {
    match objective.better() {
        Better::Lower => normalize_wait(raw),
        Better::Higher => raw.iter().map(|&v| normalize_percent(v)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percents_scale_to_unit() {
        assert_eq!(normalize_percent(0.0), 0.0);
        assert_eq!(normalize_percent(50.0), 0.5);
        assert_eq!(normalize_percent(100.0), 1.0);
    }

    #[test]
    fn percents_clamp_out_of_range() {
        assert_eq!(normalize_percent(120.0), 1.0);
        assert_eq!(normalize_percent(-5.0), 0.0);
    }

    #[test]
    fn wait_zero_is_ideal() {
        let n = normalize_wait(&[0.0, 100.0, 50.0]);
        assert_eq!(n[0], 1.0, "zero wait normalizes to the best value");
        assert_eq!(n[1], 0.0, "worst wait normalizes to the worst value");
        assert_eq!(n[2], 0.5);
    }

    #[test]
    fn all_zero_waits_are_all_ideal() {
        assert_eq!(normalize_wait(&[0.0, 0.0]), vec![1.0, 1.0]);
        assert_eq!(normalize_wait(&[]), Vec::<f64>::new());
    }

    #[test]
    fn normalize_dispatches_by_direction() {
        let w = normalize(Objective::Wait, &[10.0, 0.0]);
        assert_eq!(w, vec![0.0, 1.0]);
        let s = normalize(Objective::Sla, &[25.0, 75.0]);
        assert_eq!(s, vec![0.25, 0.75]);
        let p = normalize(Objective::Profitability, &[100.0]);
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    fn minmax_scheme_spans_unit_interval() {
        let n = normalize_wait_with(&[0.0, 100.0, 50.0], WaitNormalization::MinMax);
        assert_eq!(n, vec![1.0, 0.0, 0.5]);
        assert_eq!(
            normalize_wait_with(&[7.0, 7.0], WaitNormalization::MinMax),
            vec![1.0, 1.0]
        );
    }

    #[test]
    fn reciprocal_scheme_is_policy_independent() {
        let scheme = WaitNormalization::Reciprocal { scale: 100.0 };
        let a = normalize_wait_with(&[100.0, 300.0], scheme);
        let b = normalize_wait_with(&[100.0], scheme);
        assert_eq!(a[0], b[0], "a policy's score ignores the others");
        assert_eq!(a[0], 0.5, "scale wait maps to one half");
        assert!((a[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn schemes_agree_on_direction() {
        for scheme in [
            WaitNormalization::RelativeToWorst,
            WaitNormalization::MinMax,
            WaitNormalization::Reciprocal { scale: 50.0 },
        ] {
            let n = normalize_wait_with(&[10.0, 90.0], scheme);
            assert!(n[0] > n[1], "{scheme:?}: lower wait scores higher");
            assert!(n.iter().all(|x| (0.0..=1.0).contains(x)));
        }
    }

    #[test]
    fn outputs_always_in_unit_interval() {
        for obj in Objective::ALL {
            let out = normalize(obj, &[0.0, 3.7, 99.9, 1e6]);
            assert!(
                out.iter().all(|&x| (0.0..=1.0).contains(&x)),
                "{obj}: {out:?}"
            );
        }
    }
}
