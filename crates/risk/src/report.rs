//! Text rendering of risk-analysis artefacts: extrema tables (Table II),
//! ranking tables (Tables III/IV), and an ASCII scatter of a risk plot.

use crate::dominance::{dominance_matrix, Dominance};
use crate::plot::RiskPlot;
use crate::rank::RankedPolicy;
use std::fmt::Write as _;

/// Renders the per-policy extrema table (paper Table II layout).
pub fn extrema_table(plot: &RiskPlot) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}",
        "Policy", "max perf", "min perf", "diff", "max vol", "min vol", "diff"
    );
    for series in &plot.series {
        let e = series.extrema();
        let _ = writeln!(
            s,
            "{:<12} {:>9.3} {:>9.3} {:>9.3}   {:>9.3} {:>9.3} {:>9.3}",
            series.name,
            e.max_performance,
            e.min_performance,
            e.performance_difference(),
            e.max_volatility,
            e.min_volatility,
            e.volatility_difference()
        );
    }
    s
}

/// Renders a ranking table (paper Table III/IV layout).
pub fn ranking_table(rows: &[RankedPolicy], primary: &str, secondary: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<5} {:<12} {:>10} {:>10} {:>10} {:>10}  {:<12}",
        "Rank", "Policy", primary, secondary, "prim diff", "sec diff", "Gradient"
    );
    for r in rows {
        let (p1, p2, d1, d2) = if primary.contains("perf") {
            (
                r.max_performance,
                r.min_volatility,
                r.performance_difference,
                r.volatility_difference,
            )
        } else {
            (
                r.min_volatility,
                r.max_performance,
                r.volatility_difference,
                r.performance_difference,
            )
        };
        let _ = writeln!(
            s,
            "{:<5} {:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  {:<12}",
            r.rank, r.name, p1, p2, d1, d2, r.gradient
        );
    }
    s
}

/// Renders the pairwise stochastic-dominance table of a plot.
pub fn dominance_table(plot: &RiskPlot) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:<12} {:<12} {:>7} {:>7}",
        "policy A", "policy B", "FSD verdict", "A wins", "B wins"
    );
    for pair in dominance_matrix(plot) {
        let verdict = match pair.verdict {
            Dominance::First => "A ≻ B",
            Dominance::Second => "B ≻ A",
            Dominance::Equal => "equal",
            Dominance::Neither => "crossing",
        };
        let _ = writeln!(
            s,
            "{:<12} {:<12} {:<12} {:>7} {:>7}",
            pair.a, pair.b, verdict, pair.wins_a, pair.wins_b
        );
    }
    s
}

/// Renders an ASCII scatter of the plot: volatility on x (0..max), normalized
/// performance on y (0..1). Each policy is drawn with a distinct glyph.
pub fn ascii_plot(plot: &RiskPlot, width: usize, height: usize) -> String {
    const GLYPHS: &[char] = &['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', '*', '+', 'x', 'o'];
    let max_vol = plot
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.volatility))
        .fold(0.0_f64, f64::max)
        .max(0.5);
    let mut grid = vec![vec![' '; width]; height];
    for (si, series) in plot.series.iter().enumerate() {
        let glyph = series
            .name
            .chars()
            .next()
            .filter(|c| c.is_ascii_uppercase())
            .unwrap_or(GLYPHS[si % GLYPHS.len()]);
        for p in &series.points {
            let x = ((p.volatility / max_vol) * (width - 1) as f64).round() as usize;
            let y = ((1.0 - p.performance.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = glyph;
        }
    }
    let mut s = String::with_capacity((width + 8) * (height + 3));
    let _ = writeln!(
        s,
        "{} (perf ↑ vs volatility →, x-max {:.2})",
        plot.title, max_vol
    );
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.0"
        } else if i == height - 1 {
            "0.0"
        } else {
            "   "
        };
        let _ = writeln!(s, "{label} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(s, "     {}", "-".repeat(width));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::sample_figure1;
    use crate::rank::{rank, RankBy};

    #[test]
    fn extrema_table_lists_all_policies() {
        let t = extrema_table(&sample_figure1());
        for name in ["A", "B", "C", "D", "E", "F", "G", "H"] {
            assert!(t.lines().any(|l| l.starts_with(name)), "{name} missing");
        }
        assert!(t.contains("max perf"));
    }

    #[test]
    fn ranking_table_renders_both_orders() {
        let plot = sample_figure1();
        let t3 = ranking_table(&rank(&plot, RankBy::BestPerformance), "max perf", "min vol");
        assert!(t3.lines().nth(1).unwrap().contains('A'), "rank 1 is A");
        let t4 = ranking_table(&rank(&plot, RankBy::BestVolatility), "min vol", "max perf");
        assert!(t4.lines().nth(2).unwrap().contains('E'), "rank 2 is E");
    }

    #[test]
    fn dominance_table_covers_all_pairs() {
        let t = dominance_table(&sample_figure1());
        assert_eq!(t.lines().count(), 1 + 28, "header + C(8,2) pairs");
        assert!(t.contains("A ≻ B") || t.contains("B ≻ A"));
    }

    #[test]
    fn ascii_plot_has_requested_dimensions() {
        let s = ascii_plot(&sample_figure1(), 60, 20);
        assert_eq!(s.lines().count(), 22); // title + 20 rows + axis
        assert!(s.contains('A') && s.contains('H'));
    }
}
