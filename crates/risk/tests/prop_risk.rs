//! Property-based tests of the risk-analysis mathematics.

use ccs_risk::{
    integrated, integrated_equal, normalize::normalize, rank, separate, Gradient, Objective,
    PolicySeries, RankBy, RiskMeasure, RiskPlot,
};
use proptest::prelude::*;

fn measures_strategy(n: usize) -> impl Strategy<Value = Vec<RiskMeasure>> {
    prop::collection::vec((0.0f64..=1.0, 0.0f64..=0.5), n..=n)
        .prop_map(|v| v.into_iter().map(|(p, s)| RiskMeasure::new(p, s)).collect())
}

proptest! {
    /// Separate risk analysis stays in its mathematical bounds: performance
    /// in [0,1], volatility in [0, 0.5] (max population sd of unit-interval
    /// data).
    #[test]
    fn separate_bounds(xs in prop::collection::vec(0.0f64..=1.0, 1..50)) {
        let m = separate(&xs);
        prop_assert!((0.0..=1.0).contains(&m.performance));
        prop_assert!((0.0..=0.5 + 1e-9).contains(&m.volatility));
    }

    /// Shifting every normalized result by a constant shifts performance by
    /// the same constant and leaves volatility unchanged.
    #[test]
    fn separate_translation_equivariance(
        xs in prop::collection::vec(0.0f64..=0.5, 2..30),
        delta in 0.0f64..0.5,
    ) {
        let a = separate(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + delta).collect();
        let b = separate(&shifted);
        prop_assert!((b.performance - a.performance - delta).abs() < 1e-9);
        prop_assert!((b.volatility - a.volatility).abs() < 1e-9);
    }

    /// Integration with equal weights is bounded by the component extremes
    /// (convex combination) for both indicators.
    #[test]
    fn integrated_convexity(ms in measures_strategy(4)) {
        let m = integrated_equal(&ms);
        let (plo, phi) = ms.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), x| {
            (lo.min(x.performance), hi.max(x.performance))
        });
        let (vlo, vhi) = ms.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), x| {
            (lo.min(x.volatility), hi.max(x.volatility))
        });
        prop_assert!(m.performance >= plo - 1e-12 && m.performance <= phi + 1e-12);
        prop_assert!(m.volatility >= vlo - 1e-12 && m.volatility <= vhi + 1e-12);
    }

    /// Integration is linear in the weights: moving weight toward a better
    /// objective can only improve the blend.
    #[test]
    fn integrated_weight_monotonicity(w in 0.0f64..=1.0) {
        let good = RiskMeasure::new(0.9, 0.1);
        let bad = RiskMeasure::new(0.2, 0.4);
        let m = integrated(&[(good, w), (bad, 1.0 - w)]);
        let expect_p = w * 0.9 + (1.0 - w) * 0.2;
        prop_assert!((m.performance - expect_p).abs() < 1e-12);
        let m2 = integrated(&[(good, (w + 0.1).min(1.0)), (bad, 1.0 - (w + 0.1).min(1.0))]);
        prop_assert!(m2.performance >= m.performance - 1e-12);
    }

    /// Normalization always lands in [0, 1], and the best raw value always
    /// maps to the per-point maximum.
    #[test]
    fn normalization_bounds_and_orientation(
        raws in prop::collection::vec(0.0f64..=100.0, 1..10),
        waits in prop::collection::vec(0.0f64..=1e6, 1..10),
    ) {
        for obj in [Objective::Sla, Objective::Reliability, Objective::Profitability] {
            let n = normalize(obj, &raws);
            prop_assert!(n.iter().all(|&x| (0.0..=1.0).contains(&x)));
            // Higher raw => higher normalized (same order).
            for i in 0..raws.len() {
                for j in 0..raws.len() {
                    if raws[i] < raws[j] {
                        prop_assert!(n[i] <= n[j] + 1e-12);
                    }
                }
            }
        }
        let n = normalize(Objective::Wait, &waits);
        prop_assert!(n.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Lower wait => higher normalized.
        for i in 0..waits.len() {
            for j in 0..waits.len() {
                if waits[i] < waits[j] {
                    prop_assert!(n[i] >= n[j] - 1e-12);
                }
            }
        }
    }

    /// Ranking returns a permutation with dense 1-based ranks, under both
    /// orderings, for arbitrary plots.
    #[test]
    fn ranking_is_permutation(
        series in prop::collection::vec(measures_strategy(5), 2..8),
    ) {
        let plot = RiskPlot::new(
            "prop",
            series
                .into_iter()
                .enumerate()
                .map(|(i, pts)| PolicySeries::new(format!("P{i}"), pts))
                .collect(),
        );
        for by in [RankBy::BestPerformance, RankBy::BestVolatility] {
            let rows = rank(&plot, by);
            prop_assert_eq!(rows.len(), plot.series.len());
            let mut names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
            names.sort_unstable();
            let mut expect: Vec<String> = plot.series.iter().map(|s| s.name.clone()).collect();
            expect.sort_unstable();
            prop_assert_eq!(names, expect.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            for (i, r) in rows.iter().enumerate() {
                prop_assert_eq!(r.rank, i + 1);
            }
        }
    }

    /// The best-volatility ranking never places a policy with strictly
    /// higher minimum volatility above one with strictly lower.
    #[test]
    fn volatility_ranking_respects_primary_key(
        series in prop::collection::vec(measures_strategy(4), 2..6),
    ) {
        let plot = RiskPlot::new(
            "prop",
            series
                .into_iter()
                .enumerate()
                .map(|(i, pts)| PolicySeries::new(format!("P{i}"), pts))
                .collect(),
        );
        let rows = rank(&plot, RankBy::BestVolatility);
        for w in rows.windows(2) {
            prop_assert!(w[0].min_volatility <= w[1].min_volatility + 1e-12);
        }
    }

    /// Gradient classification is stable under uniform point scaling of
    /// volatility (sign of the slope is scale-invariant).
    #[test]
    fn gradient_sign_scale_invariant(
        pts in prop::collection::vec((0.01f64..0.5, 0.0f64..1.0), 3..10),
        scale in 0.1f64..5.0,
    ) {
        let a: Vec<RiskMeasure> = pts.iter().map(|&(v, p)| RiskMeasure::new(p, v)).collect();
        let b: Vec<RiskMeasure> = pts.iter().map(|&(v, p)| RiskMeasure::new(p, v * scale)).collect();
        let ga = ccs_risk::trend::gradient(&a);
        let gb = ccs_risk::trend::gradient(&b);
        // Zero/NA can flip by epsilon; only assert for clear slopes.
        if matches!(ga, Gradient::Increasing | Gradient::Decreasing) {
            if let Some(fit) = ccs_risk::trend::fit(&a) {
                if fit.slope.abs() > 1e-3 {
                    prop_assert_eq!(ga, gb);
                }
            }
        }
    }
}
