//! Property-based tests of the scheduling policies at the policy-trait
//! level (capacity safety, admission monotonicity, reservation integrity).

use ccs_economy::EconomicModel;
use ccs_policies::{
    BackfillPolicy, ConservativeBf, FirstRewardParams, FirstRewardPolicy, LibraPolicy,
    LibraVariant, Outcome, Policy, PriorityOrder,
};
use ccs_workload::{Job, Urgency};
use proptest::prelude::*;

fn jobs_strategy(max_procs: u32) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            1.0f64..500.0,  // gap
            10.0f64..800.0, // runtime
            0.3f64..3.0,    // estimate factor
            1.5f64..12.0,   // deadline factor
            1u32..=8,       // procs
        ),
        1..25,
    )
    .prop_map(move |raw| {
        let mut t = 0.0;
        raw.iter()
            .enumerate()
            .map(|(i, &(gap, rt, ef, df, procs))| {
                t += gap;
                Job {
                    id: i as u32,
                    submit: t,
                    runtime: rt,
                    estimate: (rt * ef).max(1.0),
                    procs: procs.min(max_procs),
                    urgency: Urgency::Low,
                    deadline: rt * df,
                    budget: rt * procs as f64 * 8.0,
                    penalty_rate: procs as f64,
                }
            })
            .collect()
    })
}

/// Drives a policy through a job stream.
fn run_policy(mut policy: Box<dyn Policy>, jobs: &[Job]) -> Vec<Outcome> {
    let mut out = Vec::new();
    for j in jobs {
        policy.advance_to(j.submit, &mut out);
        policy.on_submit(j, j.submit, &mut out);
    }
    policy.drain(&mut out);
    out
}

/// Drives a policy through a job stream, tracking concurrent processor use
/// from the outcome stream. Only valid for space-shared policies — the PS
/// engine time-shares nodes by design.
fn run_and_audit(policy: Box<dyn Policy>, jobs: &[Job], nodes: u32) -> Vec<Outcome> {
    let out = run_policy(policy, jobs);
    let mut events: Vec<(f64, i64)> = Vec::new();
    for o in &out {
        match o {
            Outcome::Started { job, at } => {
                events.push((*at, jobs[*job as usize].procs as i64));
            }
            Outcome::Completed { job, finish, .. } => {
                events.push((*finish, -(jobs[*job as usize].procs as i64)));
            }
            _ => {}
        }
    }
    // Releases at the same instant happen before starts.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut used = 0i64;
    for (t, d) in events {
        used += d;
        assert!(
            used <= nodes as i64,
            "capacity violated: {used} procs in use at t={t}"
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Space-shared policies never oversubscribe the machine.
    #[test]
    fn space_shared_capacity_safety(jobs in jobs_strategy(8)) {
        let nodes = 8;
        for order in [PriorityOrder::Fcfs, PriorityOrder::Sjf, PriorityOrder::Edf] {
            let p = BackfillPolicy::new(order, EconomicModel::BidBased, nodes);
            run_and_audit(Box::new(p), &jobs, nodes);
        }
        run_and_audit(
            Box::new(ConservativeBf::new(EconomicModel::BidBased, nodes)),
            &jobs,
            nodes,
        );
        run_and_audit(Box::new(FirstRewardPolicy::new(nodes)), &jobs, nodes);
    }

    /// Every policy emits exactly one decision per job, and accepted jobs
    /// start and complete exactly once.
    #[test]
    fn outcome_stream_discipline(jobs in jobs_strategy(8)) {
        let nodes = 8;
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, nodes)),
            Box::new(ConservativeBf::new(EconomicModel::BidBased, nodes)),
            Box::new(LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, nodes)),
            Box::new(FirstRewardPolicy::new(nodes)),
        ];
        let _ = nodes;
        for p in policies {
            let name = p.name();
            let out = run_policy(p, &jobs);
            for j in &jobs {
                let accepts = out.iter().filter(|o| matches!(o, Outcome::Accepted { job, .. } if *job == j.id)).count();
                let rejects = out.iter().filter(|o| matches!(o, Outcome::Rejected { job, .. } if *job == j.id)).count();
                let starts = out.iter().filter(|o| matches!(o, Outcome::Started { job, .. } if *job == j.id)).count();
                let completes = out.iter().filter(|o| matches!(o, Outcome::Completed { job, .. } if *job == j.id)).count();
                prop_assert_eq!(accepts + rejects, 1, "{}: job {} decisions", name, j.id);
                prop_assert_eq!(starts, accepts, "{}: job {} starts", name, j.id);
                prop_assert_eq!(completes, accepts, "{}: job {} completions", name, j.id);
            }
        }
    }

    /// FirstReward acceptance is monotone non-increasing in the slack
    /// threshold.
    #[test]
    fn first_reward_threshold_monotonicity(jobs in jobs_strategy(8), t1 in -1e5f64..1e5, t2 in -1e5f64..1e5) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let accepted = |threshold: f64| {
            let p = FirstRewardPolicy::with_params(
                8,
                FirstRewardParams { slack_threshold: threshold, ..Default::default() },
            );
            let out = run_and_audit(Box::new(p), &jobs, 8);
            out.iter().filter(|o| matches!(o, Outcome::Accepted { .. })).count()
        };
        prop_assert!(accepted(lo) >= accepted(hi), "lenient threshold accepts no fewer");
    }

    /// Conservative backfilling with accurate estimates never breaks an
    /// accepted job's deadline (each reservation is deadline-checked).
    #[test]
    fn conservative_accurate_estimates_keep_promises(jobs in jobs_strategy(8)) {
        let accurate: Vec<Job> = jobs
            .iter()
            .map(|j| Job { estimate: j.runtime, ..*j })
            .collect();
        let p = ConservativeBf::new(EconomicModel::BidBased, 8);
        let out = run_and_audit(Box::new(p), &accurate, 8);
        for o in &out {
            if let Outcome::Completed { job, finish, .. } = o {
                let j = &accurate[*job as usize];
                prop_assert!(
                    *finish <= j.submit + j.deadline + 1e-6,
                    "job {} finished at {finish} past its deadline {}",
                    j.id,
                    j.submit + j.deadline
                );
            }
        }
    }
}
