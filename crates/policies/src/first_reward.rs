//! FirstReward (Irwin, Grit & Chase, HPDC 2004), as adapted by the paper.
//!
//! FirstReward targets the bid-based model: it weighs a job's discounted
//! earnings against the opportunity cost of the penalties that accepting it
//! could impose on the other accepted jobs.
//!
//! - **Present value**: `PV_i = b_i / (1 + discount_rate · RPT_i)` where
//!   `RPT_i` is the estimated remaining processing time.
//! - **Opportunity cost** (unbounded penalties):
//!   `cost_i = Σ_{j≠i} pr_j · RPT_i` over all currently accepted jobs.
//! - **Reward**: `reward_i = (α·PV_i − (1−α)·cost_i) / RPT_i`; the queue is
//!   served highest-reward-first, so newly accepted lucrative jobs can delay
//!   previously accepted ones.
//! - **Admission**: `slack_i = (PV_i − cost_i)/pr_i`; the job is rejected at
//!   submission if its slack is below the slack threshold.
//!
//! Per the paper: α = 1, discount rate = 1 %, slack threshold = 25; extended
//! to multi-processor parallel jobs; **no backfilling** (head-of-line
//! blocking can leave processors idle).

use crate::traits::{Interruption, Outcome, Policy, RejectReason};
use ccs_cluster::SpaceShared;
use ccs_des::{EventHandle, EventQueue, SimTime};
use ccs_workload::{Job, JobId};
use std::collections::HashMap;

/// Tunable parameters of FirstReward.
#[derive(Clone, Copy, Debug)]
pub struct FirstRewardParams {
    /// Weight between earnings and opportunity cost in the reward.
    pub alpha: f64,
    /// Discount rate per financial time unit of remaining processing time.
    pub discount_rate: f64,
    /// Minimum admissible slack.
    pub slack_threshold: f64,
    /// Seconds per financial time unit used in the PV discounting. The
    /// original FirstReward paper works in abstract time units; we use
    /// hours so that the paper's discount rate (1 %) stays meaningful for
    /// hour-scale jobs (see DESIGN.md §5.6).
    pub time_unit_secs: f64,
}

impl Default for FirstRewardParams {
    fn default() -> Self {
        // Paper Section 5.2: "α is 1, the discount rate is 1%, and the slack
        // threshold is 25."
        FirstRewardParams {
            alpha: 1.0,
            discount_rate: 0.01,
            slack_threshold: 25.0,
            time_unit_secs: 3600.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct RunInfo {
    start: f64,
    job: Job,
    /// Handle of the scheduled completion event, cancelled on preemption.
    handle: EventHandle,
}

/// The FirstReward policy.
pub struct FirstRewardPolicy {
    params: FirstRewardParams,
    cluster: SpaceShared,
    queue: Vec<Job>,
    running: HashMap<JobId, RunInfo>,
    completions: EventQueue<JobId>,
}

impl FirstRewardPolicy {
    /// Creates a FirstReward policy over `nodes` space-shared processors.
    pub fn new(nodes: u32) -> Self {
        Self::with_params(nodes, FirstRewardParams::default())
    }

    /// Creates a FirstReward policy with explicit parameters.
    pub fn with_params(nodes: u32, params: FirstRewardParams) -> Self {
        FirstRewardPolicy {
            params,
            cluster: SpaceShared::new(nodes),
            queue: Vec::new(),
            running: HashMap::new(),
            completions: EventQueue::new(),
        }
    }

    /// Discounted present value of `job` given remaining processing time
    /// (`rpt` in seconds, converted to financial time units).
    fn present_value(&self, job: &Job, rpt: f64) -> f64 {
        job.budget / (1.0 + self.params.discount_rate * rpt / self.params.time_unit_secs)
    }

    /// Opportunity cost of running `job` for `rpt` more seconds: the penalty
    /// every *other* accepted (queued or running) job could accrue meanwhile.
    ///
    /// The original formula (`Σ_{j≠i} pr_j · RPT_i`) models a single-queue
    /// resource where every accepted job truly waits behind job `i`. On a
    /// parallel machine job `i` only holds `procs_i / nodes` of the
    /// capacity, so — as part of the paper's "extended to multiple-processor
    /// parallel jobs" adaptation — the cost is weighted by that machine
    /// fraction (DESIGN.md §5.6).
    fn opportunity_cost(&self, job: &Job, rpt: f64) -> f64 {
        let sum_pr: f64 = self
            .queue
            .iter()
            .filter(|q| q.id != job.id)
            .map(|q| q.penalty_rate)
            .chain(
                self.running
                    .values()
                    .filter(|r| r.job.id != job.id)
                    .map(|r| r.job.penalty_rate),
            )
            .sum();
        // Nominal capacity, so a transient failure does not perturb the
        // admission economics (and a fully down cluster divides by zero).
        let machine_fraction = job.procs as f64 / self.cluster.base() as f64;
        sum_pr * rpt * machine_fraction
    }

    /// The α-weighted reward rate used to order the queue.
    fn reward(&self, job: &Job) -> f64 {
        let rpt = job.estimate;
        let pv = self.present_value(job, rpt);
        let cost = self.opportunity_cost(job, rpt);
        (self.params.alpha * pv - (1.0 - self.params.alpha) * cost) / rpt.max(1e-9)
    }

    /// Admission test at submission time.
    fn admissible(&self, job: &Job) -> bool {
        let rpt = job.estimate;
        let pv = self.present_value(job, rpt);
        let cost = self.opportunity_cost(job, rpt);
        let slack = (pv - cost) / job.penalty_rate.max(1e-12);
        slack >= self.params.slack_threshold
    }

    /// Head-of-line scheduling: start the highest-reward queued job while it
    /// fits; stop at the first that does not (no backfilling).
    fn try_schedule(&mut self, now: f64, out: &mut Vec<Outcome>) {
        loop {
            // Highest reward first.
            let mut best: Option<(f64, usize)> = None;
            for (i, q) in self.queue.iter().enumerate() {
                let r = self.reward(q);
                if best.is_none_or(|(br, _)| r > br) {
                    best = Some((r, i));
                }
            }
            let Some((_, idx)) = best else { return };
            let job = self.queue[idx];
            if job.procs > self.cluster.free_procs() {
                return; // head-of-line blocking: no backfill behind it
            }
            self.queue.remove(idx);
            self.cluster.start(job.id, job.procs, now + job.estimate);
            let handle = self
                .completions
                .push(SimTime::new(now + job.runtime), job.id);
            out.push(Outcome::Started {
                job: job.id,
                at: now,
            });
            self.running.insert(
                job.id,
                RunInfo {
                    start: now,
                    job,
                    handle,
                },
            );
        }
    }

    fn handle_completion(&mut self, job_id: JobId, finish: f64, out: &mut Vec<Outcome>) {
        let info = self
            .running
            .remove(&job_id)
            .expect("completion of unknown job");
        self.cluster.finish(job_id);
        out.push(Outcome::Completed {
            job: job_id,
            start: info.start,
            finish,
            charged: None, // bid-based: utility derives from the finish time
        });
        self.try_schedule(finish, out);
    }
}

impl Policy for FirstRewardPolicy {
    fn name(&self) -> &'static str {
        "FirstReward"
    }

    fn on_submit(&mut self, job: &Job, now: f64, out: &mut Vec<Outcome>) {
        let refusal = if job.procs > self.cluster.base() {
            Some(RejectReason::TooLarge)
        } else if !self.admissible(job) {
            Some(RejectReason::LowSlack)
        } else {
            None
        };
        if let Some(reason) = refusal {
            out.push(Outcome::Rejected {
                job: job.id,
                at: now,
                reason,
            });
            return;
        }
        out.push(Outcome::Accepted {
            job: job.id,
            at: now,
        });
        self.queue.push(*job);
        self.try_schedule(now, out);
    }

    fn next_event_time(&mut self) -> Option<f64> {
        self.completions.peek_time().map(|t| t.as_secs())
    }

    fn advance_to(&mut self, t: f64, out: &mut Vec<Outcome>) {
        while let Some(et) = self.completions.peek_time() {
            if et.as_secs() > t {
                break;
            }
            let (et, job_id) = self.completions.pop().expect("peeked event");
            self.handle_completion(job_id, et.as_secs(), out);
        }
    }

    fn drain(&mut self, out: &mut Vec<Outcome>) {
        self.advance_to(f64::INFINITY, out);
        // Queued jobs may survive drain when the runner abandons futile
        // weather (failure injection); they stay accepted-but-unfulfilled.
        debug_assert!(self.running.is_empty());
    }

    fn on_node_fail(&mut self, _node: u32, now: f64, out: &mut Vec<Outcome>) -> Vec<Interruption> {
        let mut interruptions = Vec::new();
        if let Ok(victim) = self.cluster.fail_one() {
            if let Some(victim) = victim {
                let info = self
                    .running
                    .remove(&victim)
                    .expect("preempted job must be running");
                self.completions.cancel(info.handle);
                let elapsed = (now - info.start).max(0.0);
                interruptions.push(Interruption {
                    job: victim,
                    started_at: info.start,
                    remaining_work: (info.job.runtime - elapsed).max(0.0),
                });
            }
            self.try_schedule(now, out);
        }
        interruptions
    }

    fn on_node_repair(&mut self, _node: u32, now: f64, out: &mut Vec<Outcome>) {
        self.cluster.repair_one();
        self.try_schedule(now, out);
    }

    fn queued_jobs(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_workload::Urgency;

    fn job(id: JobId, submit: f64, runtime: f64, budget: f64, pr: f64, procs: u32) -> Job {
        Job {
            id,
            submit,
            runtime,
            estimate: runtime,
            procs,
            urgency: Urgency::High,
            deadline: runtime * 4.0,
            budget,
            penalty_rate: pr,
        }
    }

    fn run(policy: &mut FirstRewardPolicy, jobs: &[Job]) -> Vec<Outcome> {
        let mut out = Vec::new();
        for j in jobs {
            policy.advance_to(j.submit, &mut out);
            policy.on_submit(j, j.submit, &mut out);
        }
        policy.drain(&mut out);
        out
    }

    #[test]
    fn accepts_profitable_job() {
        let mut p = FirstRewardPolicy::new(4);
        let out = run(&mut p, &[job(0, 0.0, 100.0, 1000.0, 1.0, 2)]);
        assert!(matches!(out[0], Outcome::Accepted { job: 0, .. }));
        assert!(out
            .iter()
            .any(|o| matches!(o, Outcome::Completed { job: 0, .. })));
    }

    #[test]
    fn rejects_when_slack_below_threshold() {
        let mut p = FirstRewardPolicy::new(4);
        // PV = 10/(1+1) = 5; slack = 5/1 = 5 < 25 -> reject.
        let out = run(&mut p, &[job(0, 0.0, 100.0, 10.0, 1.0, 1)]);
        assert!(matches!(out[0], Outcome::Rejected { job: 0, .. }));
    }

    #[test]
    fn more_accepted_work_raises_opportunity_cost() {
        let mut p = FirstRewardPolicy::new(2);
        // Fill the machine with jobs carrying fat penalty rates, then submit
        // a borderline job: its opportunity cost now sinks it.
        let filler: Vec<Job> = (0..4).map(|i| job(i, 0.0, 1000.0, 1e6, 50.0, 1)).collect();
        let mut jobs = filler.clone();
        // Borderline job: PV=50000/(1+10)=4545; cost = 4*50*1000=200000 -> slack<0.
        jobs.push(job(9, 1.0, 1000.0, 50_000.0, 1.0, 1));
        let out = run(&mut p, &jobs);
        let rejected: Vec<JobId> = out
            .iter()
            .filter_map(|o| match o {
                Outcome::Rejected { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert!(rejected.contains(&9), "opportunity cost must reject it");
    }

    #[test]
    fn queue_served_in_reward_order() {
        let mut p = FirstRewardPolicy::new(2);
        // Occupy the machine, queue two more; the higher-reward one runs next
        // even though it arrived later.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 1e6, 0.1, 2),
                job(1, 1.0, 100.0, 5_000.0, 0.1, 2),
                job(2, 2.0, 100.0, 500_000.0, 0.1, 2),
            ],
        );
        let starts: Vec<(JobId, f64)> = out
            .iter()
            .filter_map(|o| match o {
                Outcome::Started { job, at } => Some((*job, *at)),
                _ => None,
            })
            .collect();
        assert_eq!(starts[0].0, 0);
        assert_eq!(starts[1].0, 2, "reward order, not FCFS");
        assert_eq!(starts[2].0, 1);
    }

    #[test]
    fn head_of_line_blocking_no_backfill() {
        let mut p = FirstRewardPolicy::new(4);
        // Job 0 takes all 4 procs. Job 1 (high reward, 4 procs) blocks the
        // queue; job 2 (1 proc, lower reward) must NOT start before job 1
        // even though processors... are busy anyway; after job 0 finishes,
        // job 1 runs, and job 2 waits again (4 procs still busy).
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 1e6, 0.1, 4),
                job(1, 1.0, 100.0, 9e5, 0.1, 4),
                job(2, 2.0, 10.0, 1e4, 0.1, 1), // lower reward rate than job 1
            ],
        );
        let starts: Vec<(JobId, f64)> = out
            .iter()
            .filter_map(|o| match o {
                Outcome::Started { job, at } => Some((*job, *at)),
                _ => None,
            })
            .collect();
        let s2 = starts.iter().find(|s| s.0 == 2).unwrap();
        assert!(
            s2.1 >= 200.0,
            "no backfill: job 2 waits for both wide jobs (started at {})",
            s2.1
        );
    }

    #[test]
    fn acceptance_happens_at_submission_but_start_can_wait() {
        let mut p = FirstRewardPolicy::new(2);
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 1e6, 0.1, 2),
                job(1, 5.0, 50.0, 1e6, 0.1, 2),
            ],
        );
        let acc1 = out
            .iter()
            .find_map(|o| match o {
                Outcome::Accepted { job: 1, at } => Some(*at),
                _ => None,
            })
            .unwrap();
        assert_eq!(acc1, 5.0, "accepted immediately at submission");
        let start1 = out
            .iter()
            .find_map(|o| match o {
                Outcome::Started { job: 1, at } => Some(*at),
                _ => None,
            })
            .unwrap();
        assert_eq!(start1, 100.0, "but starts only when processors free");
    }
}
