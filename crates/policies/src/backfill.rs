//! EASY backfilling with generous admission control (paper Section 5.2).
//!
//! FCFS-BF, SJF-BF, and EDF-BF share this engine and differ only in how the
//! queue is prioritized (arrival time, runtime estimate, or deadline). The
//! scheduler is space-shared and non-preemptive:
//!
//! - The highest-priority queued job starts as soon as enough processors are
//!   free.
//! - When it cannot start, EASY backfilling lets lower-priority jobs jump
//!   ahead **provided they do not delay the head job's reservation**, judged
//!   from runtime *estimates*: a candidate may start if it is predicted to
//!   finish before the head's shadow time, or if it fits into the extra
//!   processors left at the shadow time.
//! - **Generous admission control**: whenever a job is considered for
//!   execution it is rejected if (i) its estimated completion would exceed
//!   its deadline, or (ii) its deadline already lapsed while it waited in the
//!   queue. In the commodity market model a job whose expected cost exceeds
//!   its budget is rejected as well.

use crate::traits::{Interruption, Outcome, Policy, RejectReason};
use ccs_cluster::SpaceShared;
use ccs_des::{EventHandle, EventQueue, FastHashMap, SimTime};
use ccs_economy::{base_cost, EconomicModel, PriceSchedule};
use ccs_workload::{Job, JobId};
use std::cmp::Ordering;

/// Structural options of the backfilling scheduler, for ablation studies.
///
/// The paper notes (Section 5.2) that "these policies without job admission
/// control perform much worse, especially when deadlines of jobs are
/// short" — `admission_control: false` reproduces that configuration.
/// `backfilling: false` degrades EASY to plain priority scheduling with
/// head-of-line blocking.
#[derive(Clone, Copy, Debug)]
pub struct BackfillOptions {
    /// Enable EASY backfilling behind a blocked head job.
    pub backfilling: bool,
    /// Enable the generous admission control (deadline + budget checks).
    pub admission_control: bool,
}

impl Default for BackfillOptions {
    fn default() -> Self {
        BackfillOptions {
            backfilling: true,
            admission_control: true,
        }
    }
}

/// Queue discipline of the backfilling scheduler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PriorityOrder {
    /// First Come First Serve: earliest submission first.
    Fcfs,
    /// Shortest Job First: smallest runtime *estimate* first.
    Sjf,
    /// Earliest Deadline First: earliest absolute deadline first.
    Edf,
}

#[derive(Clone, Copy, Debug)]
struct RunInfo {
    start: f64,
    charged: Option<f64>,
    /// The job itself, kept so a preemption can compute remaining work.
    job: Job,
    /// Handle of the scheduled completion event, cancelled on preemption.
    handle: EventHandle,
}

/// The shared FCFS/SJF/EDF backfilling policy.
pub struct BackfillPolicy {
    name: &'static str,
    order: PriorityOrder,
    econ: EconomicModel,
    options: BackfillOptions,
    /// Commodity price schedule; `None` = the flat base price (the paper's
    /// configuration). Variable schedules price by the job's actual start
    /// window (paper Section 5.1: "prices can be flat or variable").
    schedule: Option<PriceSchedule>,
    cluster: SpaceShared,
    /// Waiting jobs, kept sorted in the policy's priority order at all
    /// times (jobs are immutable while queued, so sortedness is an
    /// invariant maintained by [`BackfillPolicy::enqueue`] instead of a
    /// full re-sort on every scheduling pass).
    queue: Vec<Job>,
    completions: EventQueue<JobId>,
    running: FastHashMap<JobId, RunInfo>,
    /// Diagnostic counter: scheduling sweeps run so far. The batched fault
    /// hooks exist precisely to keep this from growing once per node in a
    /// failure storm; the regression test pins that contract.
    scheduling_passes: u64,
}

/// Slack for floating-point comparisons of times.
const T_EPS: f64 = 1e-9;

impl BackfillPolicy {
    /// Creates a backfilling policy over `nodes` space-shared processors.
    pub fn new(order: PriorityOrder, econ: EconomicModel, nodes: u32) -> Self {
        Self::with_options(order, econ, nodes, BackfillOptions::default())
    }

    /// Creates a policy with explicit structural options (ablations).
    pub fn with_options(
        order: PriorityOrder,
        econ: EconomicModel,
        nodes: u32,
        options: BackfillOptions,
    ) -> Self {
        let name = match order {
            PriorityOrder::Fcfs => "FCFS-BF",
            PriorityOrder::Sjf => "SJF-BF",
            PriorityOrder::Edf => "EDF-BF",
        };
        BackfillPolicy {
            name,
            order,
            econ,
            options,
            schedule: None,
            cluster: SpaceShared::new(nodes),
            queue: Vec::new(),
            completions: EventQueue::new(),
            running: FastHashMap::default(),
            scheduling_passes: 0,
        }
    }

    /// Uses a time-of-use price schedule instead of the flat base price
    /// (commodity model only).
    pub fn with_schedule(mut self, schedule: PriceSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// The commodity quote for starting `job` at `now`.
    fn quote(&self, job: &Job, now: f64) -> f64 {
        match &self.schedule {
            None => base_cost(job),
            Some(s) => s.cost(now, job.estimate, job.procs),
        }
    }

    /// Number of jobs currently waiting in the queue (for tests/inspection).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total scheduling sweeps ([`BackfillPolicy::try_schedule`] runs) so
    /// far — a cost diagnostic: a batched N-node failure storm should add
    /// exactly one, not N.
    pub fn scheduling_passes(&self) -> u64 {
        self.scheduling_passes
    }

    /// The queue's priority relation. Ids break every tie, so this is a
    /// total order in which no two distinct jobs compare equal — a
    /// binary-search insert therefore lands each job exactly where a
    /// (stable) full sort would put it.
    fn queue_cmp(order: PriorityOrder, a: &Job, b: &Job) -> Ordering {
        match order {
            PriorityOrder::Fcfs => a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)),
            PriorityOrder::Sjf => a.estimate.total_cmp(&b.estimate).then(a.id.cmp(&b.id)),
            PriorityOrder::Edf => a
                .absolute_deadline()
                .total_cmp(&b.absolute_deadline())
                .then(a.id.cmp(&b.id)),
        }
    }

    /// Inserts a job at its priority position, keeping the queue sorted.
    fn enqueue(&mut self, job: Job) {
        let order = self.order;
        let pos = match self
            .queue
            .binary_search_by(|probe| Self::queue_cmp(order, probe, &job))
        {
            Ok(p) | Err(p) => p,
        };
        self.queue.insert(pos, job);
    }

    /// Generous admission control, applied whenever a job is considered for
    /// execution. Returns the rejection reason when the job must go.
    fn admission_error(&self, job: &Job, now: f64) -> Option<RejectReason> {
        if !self.options.admission_control {
            return None; // ablation: accept everything, deadlines be damned
        }
        let abs_deadline = job.absolute_deadline();
        if now > abs_deadline + T_EPS {
            return Some(RejectReason::DeadlineLapsed); // (ii) lapsed while waiting
        }
        if now + job.estimate > abs_deadline + T_EPS {
            return Some(RejectReason::EstimateExceedsDeadline); // (i)
        }
        if self.econ == EconomicModel::CommodityMarket && self.quote(job, now) > job.budget {
            return Some(RejectReason::OverBudget);
        }
        None
    }

    fn start(&mut self, job: Job, now: f64, out: &mut Vec<Outcome>) {
        let charged = match self.econ {
            EconomicModel::CommodityMarket => Some(self.quote(&job, now)),
            EconomicModel::BidBased => None,
        };
        self.cluster.start(job.id, job.procs, now + job.estimate);
        let handle = self
            .completions
            .push(SimTime::new(now + job.runtime), job.id);
        out.push(Outcome::Accepted {
            job: job.id,
            at: now,
        });
        out.push(Outcome::Started {
            job: job.id,
            at: now,
        });
        self.running.insert(
            job.id,
            RunInfo {
                start: now,
                charged,
                job,
                handle,
            },
        );
    }

    /// Core scheduling pass: start/reject from the head, then backfill.
    fn try_schedule(&mut self, now: f64, out: &mut Vec<Outcome>) {
        self.scheduling_passes += 1;
        debug_assert!(
            self.queue
                .windows(2)
                .all(|w| Self::queue_cmp(self.order, &w[0], &w[1]) == Ordering::Less),
            "queue sortedness invariant broken"
        );
        // Phase 1 — service the head of the queue while possible.
        loop {
            let Some(head) = self.queue.first() else {
                return;
            };
            if let Some(reason) = self.admission_error(head, now) {
                let job = self.queue.remove(0);
                out.push(Outcome::Rejected {
                    job: job.id,
                    at: now,
                    reason,
                });
                continue;
            }
            if head.procs <= self.cluster.free_procs() {
                let job = self.queue.remove(0);
                self.start(job, now, out);
                continue;
            }
            break; // head admissible but blocked: try backfilling
        }

        // Phase 2 — EASY backfill against the head's reservation.
        if !self.options.backfilling {
            return; // ablation: plain priority scheduling, no backfill
        }
        let head = self.queue[0];
        if head.procs > self.cluster.total() {
            // Failures shrank the cluster below the head's demand: no
            // reservation is computable until capacity returns (or the
            // head's deadline lapses and it is rejected above).
            return;
        }
        let res = self.cluster.reservation(head.procs, now);
        let mut extra = res.extra_procs;
        let mut i = 1;
        while i < self.queue.len() {
            let cand = self.queue[i];
            if let Some(reason) = self.admission_error(&cand, now) {
                self.queue.remove(i);
                out.push(Outcome::Rejected {
                    job: cand.id,
                    at: now,
                    reason,
                });
                continue;
            }
            if cand.procs <= self.cluster.free_procs() {
                let fits_before_shadow = now + cand.estimate <= res.shadow_time + T_EPS;
                let fits_extra = cand.procs <= extra;
                if fits_before_shadow || fits_extra {
                    if !fits_before_shadow {
                        extra -= cand.procs;
                    }
                    self.queue.remove(i);
                    self.start(cand, now, out);
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Takes one processor down, preempting a resident job if the machine
    /// was full. Returns `false` when every processor is already down (the
    /// failure is absorbed with nothing to reclaim).
    fn preempt_one(&mut self, now: f64, interruptions: &mut Vec<Interruption>) -> bool {
        let Ok(victim) = self.cluster.fail_one() else {
            return false;
        };
        if let Some(victim) = victim {
            let info = self
                .running
                .remove(&victim)
                .expect("preempted job must be running");
            self.completions.cancel(info.handle);
            let elapsed = (now - info.start).max(0.0);
            interruptions.push(Interruption {
                job: victim,
                started_at: info.start,
                remaining_work: (info.job.runtime - elapsed).max(0.0),
            });
        }
        true
    }

    fn handle_completion(&mut self, job_id: JobId, finish: f64, out: &mut Vec<Outcome>) {
        let info = self
            .running
            .remove(&job_id)
            .expect("completion of unknown job");
        self.cluster.finish(job_id);
        out.push(Outcome::Completed {
            job: job_id,
            start: info.start,
            finish,
            charged: info.charged,
        });
        self.try_schedule(finish, out);
    }
}

impl Policy for BackfillPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_submit(&mut self, job: &Job, now: f64, out: &mut Vec<Outcome>) {
        if job.procs > self.cluster.base() {
            // Physically impossible on this cluster (even with every node
            // up), regardless of options.
            out.push(Outcome::Rejected {
                job: job.id,
                at: now,
                reason: RejectReason::TooLarge,
            });
            return;
        }
        self.enqueue(*job);
        self.try_schedule(now, out);
    }

    fn next_event_time(&mut self) -> Option<f64> {
        self.completions.peek_time().map(|t| t.as_secs())
    }

    fn advance_to(&mut self, t: f64, out: &mut Vec<Outcome>) {
        while let Some(et) = self.completions.peek_time() {
            if et.as_secs() > t {
                break;
            }
            let (et, job_id) = self.completions.pop().expect("peeked event");
            self.handle_completion(job_id, et.as_secs(), out);
        }
    }

    fn drain(&mut self, out: &mut Vec<Outcome>) {
        self.advance_to(f64::INFINITY, out);
        // The queue may legitimately be non-empty here: under failure
        // injection the runner abandons futile weather (nodes that will
        // never again be up together), leaving wide jobs queued forever —
        // they are scored as accepted-but-unfulfilled.
        debug_assert!(self.running.is_empty(), "no job may be left running");
    }

    fn on_node_fail(&mut self, node: u32, now: f64, out: &mut Vec<Outcome>) -> Vec<Interruption> {
        self.on_nodes_fail(&[node], now, out)
    }

    fn on_node_repair(&mut self, node: u32, now: f64, out: &mut Vec<Outcome>) {
        self.on_nodes_repair(&[node], now, out)
    }

    fn on_nodes_fail(
        &mut self,
        nodes: &[u32],
        now: f64,
        out: &mut Vec<Outcome>,
    ) -> Vec<Interruption> {
        let mut interruptions = Vec::new();
        let mut capacity_changed = false;
        for _ in nodes {
            capacity_changed |= self.preempt_one(now, &mut interruptions);
        }
        if capacity_changed {
            // Capacity changed: re-examine the queue *once* for the whole
            // batch. This re-runs the admission checks, rejecting queued
            // jobs whose deadline can no longer be met, and may backfill
            // into the preempted jobs' surviving processors.
            self.try_schedule(now, out);
        }
        interruptions
    }

    fn on_nodes_repair(&mut self, nodes: &[u32], now: f64, out: &mut Vec<Outcome>) {
        for _ in nodes {
            self.cluster.repair_one();
        }
        self.try_schedule(now, out);
    }

    fn queued_jobs(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_workload::Urgency;

    fn job(id: JobId, submit: f64, runtime: f64, estimate: f64, deadline: f64, procs: u32) -> Job {
        Job {
            id,
            submit,
            runtime,
            estimate,
            procs,
            urgency: Urgency::Low,
            deadline,
            budget: 1e12,
            penalty_rate: 1.0,
        }
    }

    fn run(policy: &mut BackfillPolicy, jobs: &[Job]) -> Vec<Outcome> {
        let mut out = Vec::new();
        for j in jobs {
            policy.advance_to(j.submit, &mut out);
            policy.on_submit(j, j.submit, &mut out);
        }
        policy.drain(&mut out);
        out
    }

    fn completions(out: &[Outcome]) -> Vec<(JobId, f64)> {
        out.iter()
            .filter_map(|o| match o {
                Outcome::Completed { job, finish, .. } => Some((*job, *finish)),
                _ => None,
            })
            .collect()
    }

    fn rejected(out: &[Outcome]) -> Vec<JobId> {
        out.iter()
            .filter_map(|o| match o {
                Outcome::Rejected { job, .. } => Some(*job),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn immediate_start_when_cluster_free() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 8);
        let out = run(&mut p, &[job(0, 0.0, 100.0, 100.0, 1000.0, 4)]);
        assert!(matches!(out[0], Outcome::Accepted { job: 0, at } if at == 0.0));
        assert!(matches!(out[1], Outcome::Started { job: 0, at } if at == 0.0));
        assert_eq!(completions(&out), vec![(0, 100.0)]);
    }

    #[test]
    fn fcfs_blocks_head_of_line() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 8);
        // Job 0 takes all 8; job 1 needs 8 (queued); job 2 needs 2 but is
        // long (est 1000 > shadow) -> cannot backfill... but extra procs at
        // shadow = 0 so it must wait.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 8),
                job(1, 1.0, 100.0, 100.0, 1e6, 8),
                job(2, 2.0, 1000.0, 1000.0, 1e6, 2),
            ],
        );
        let c = completions(&out);
        assert_eq!(c[0].0, 0);
        assert_eq!(c[1], (1, 200.0), "job 1 starts when job 0 finishes");
        assert_eq!(c[2], (2, 1200.0), "job 2 waits behind both");
    }

    #[test]
    fn easy_backfill_fills_holes_without_delaying_head() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 8);
        // Job 0 uses 6 procs until t=100. Job 1 (head of queue) needs 8:
        // shadow = 100. Job 2 needs 2 procs for 50s: fits before shadow.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 6),
                job(1, 1.0, 100.0, 100.0, 1e6, 8),
                job(2, 2.0, 50.0, 50.0, 1e6, 2),
            ],
        );
        let c = completions(&out);
        assert_eq!(c[0], (2, 52.0), "job 2 backfilled at t=2");
        assert_eq!(c[1], (0, 100.0));
        assert_eq!(c[2], (1, 200.0), "head not delayed by the backfill");
    }

    #[test]
    fn backfill_denied_when_it_would_delay_head() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 8);
        // Same as above but job 2 runs for 500 s: it would hold 2 procs past
        // the shadow time (100) and extra at shadow is 0 -> denied.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 6),
                job(1, 1.0, 100.0, 100.0, 1e6, 8),
                job(2, 2.0, 500.0, 500.0, 1e6, 2),
            ],
        );
        let c = completions(&out);
        assert_eq!(c[0], (0, 100.0));
        assert_eq!(c[1], (1, 200.0), "head runs on time");
        assert_eq!(c[2], (2, 700.0), "long job waits for the head");
    }

    #[test]
    fn backfill_into_extra_procs_at_shadow() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 8);
        // Job 0 uses 4 procs until 100. Head job 1 needs 6 -> shadow 100,
        // extra = 8 - 6 = 2 at shadow. Job 2 needs 2 procs for 500 s: holds
        // procs past shadow but fits in the extra -> allowed.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 4),
                job(1, 1.0, 100.0, 100.0, 1e6, 6),
                job(2, 2.0, 500.0, 500.0, 1e6, 2),
            ],
        );
        let c = completions(&out);
        assert_eq!(c[0], (0, 100.0));
        assert_eq!(c[1], (1, 200.0), "head starts at its shadow time");
        assert_eq!(c[2], (2, 502.0), "extra-proc backfill started at t=2");
    }

    #[test]
    fn sjf_orders_by_estimate() {
        let mut p = BackfillPolicy::new(PriorityOrder::Sjf, EconomicModel::BidBased, 4);
        // All three need the whole machine; the shortest queued job runs next.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 4),
                job(1, 1.0, 300.0, 300.0, 1e6, 4),
                job(2, 2.0, 50.0, 50.0, 1e6, 4),
            ],
        );
        let c = completions(&out);
        assert_eq!(c[0].0, 0);
        assert_eq!(c[1].0, 2, "SJF runs the 50s job before the 300s job");
        assert_eq!(c[2].0, 1);
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut p = BackfillPolicy::new(PriorityOrder::Edf, EconomicModel::BidBased, 4);
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 4),
                job(1, 1.0, 100.0, 100.0, 1e6, 4), // deadline ~1e6
                job(2, 2.0, 100.0, 100.0, 400.0, 4), // deadline 402
            ],
        );
        let c = completions(&out);
        assert_eq!(c[1].0, 2, "EDF runs the tight-deadline job first");
        assert_eq!(c[2].0, 1);
    }

    #[test]
    fn generous_admission_rejects_lapsed_and_hopeless_jobs() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 4);
        // Job 1's deadline (80) can't fit its estimate (100): rejected on
        // first consideration. Job 2 would finish at 200 > 150: rejected once
        // job 0 occupies the machine and its own deadline lapses.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 4),
                job(1, 1.0, 100.0, 100.0, 80.0, 4),
                job(2, 2.0, 100.0, 100.0, 50.0, 4),
            ],
        );
        let r = rejected(&out);
        assert!(r.contains(&1));
        assert!(r.contains(&2));
        assert_eq!(completions(&out).len(), 1);
    }

    #[test]
    fn commodity_rejects_over_budget_jobs() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::CommodityMarket, 4);
        let mut j = job(0, 0.0, 100.0, 100.0, 1e6, 4);
        j.budget = 100.0; // base cost = 100*4 = 400 > 100
        let out = run(&mut p, &[j]);
        assert_eq!(rejected(&out), vec![0]);
    }

    #[test]
    fn commodity_charges_estimate_based_cost() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::CommodityMarket, 4);
        let j = job(0, 0.0, 100.0, 150.0, 1e6, 2); // over-estimated
        let out = run(&mut p, &[j]);
        let charged = out
            .iter()
            .find_map(|o| match o {
                Outcome::Completed { charged, .. } => *charged,
                _ => None,
            })
            .unwrap();
        assert_eq!(charged, 300.0, "est 150 × 2 procs × $1");
    }

    #[test]
    fn time_of_use_schedule_prices_by_start_window() {
        use ccs_economy::PriceSchedule;
        let tou = PriceSchedule::PeakOffPeak {
            peak: 2.0,
            off_peak: 0.5,
            peak_start_hour: 9,
            peak_end_hour: 17,
        };
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::CommodityMarket, 4)
            .with_schedule(tou);
        // One job entirely off-peak (03:00), one entirely in-peak (12:00).
        let night = job(0, 3.0 * 3600.0, 3600.0, 3600.0, 1e6, 2);
        let day = job(1, 12.0 * 3600.0, 3600.0, 3600.0, 1e6, 2);
        let out = run(&mut p, &[night, day]);
        let charged = |id: JobId| {
            out.iter()
                .find_map(|o| match o {
                    Outcome::Completed { job, charged, .. } if *job == id => *charged,
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(charged(0), 3600.0 * 0.5 * 2.0, "off-peak rate");
        assert_eq!(charged(1), 3600.0 * 2.0 * 2.0, "peak rate");
    }

    #[test]
    fn underestimated_job_delays_head_beyond_shadow() {
        // The reservation is computed from estimates; an under-estimate can
        // push the head past its expected start — the paper's core Set B
        // effect for backfilling policies.
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 8);
        let mut j0 = job(0, 0.0, 500.0, 100.0, 1e6, 8); // claims 100, runs 500
        j0.estimate = 100.0;
        let out = run(&mut p, &[j0, job(1, 1.0, 100.0, 100.0, 1e6, 8)]);
        let c = completions(&out);
        assert_eq!(c[0], (0, 500.0));
        assert_eq!(c[1], (1, 600.0), "head started only at the real finish");
    }

    #[test]
    fn node_fail_preempts_and_repair_restarts_the_queue() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 4);
        let mut out = Vec::new();
        let a = job(0, 0.0, 100.0, 100.0, 1e6, 4);
        p.on_submit(&a, 0.0, &mut out);
        let b = job(1, 1.0, 50.0, 50.0, 1e6, 4);
        p.advance_to(1.0, &mut out);
        p.on_submit(&b, 1.0, &mut out);
        assert_eq!(p.queued_jobs(), 1);

        // A node dies at t=10: every processor is busy, so job 0 (the only
        // candidate) is preempted; job 1 still needs 4 > 3 up processors.
        let hit = p.on_node_fail(0, 10.0, &mut out);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].job, 0);
        assert!((hit[0].remaining_work - 90.0).abs() < 1e-9);
        assert_eq!(p.queued_jobs(), 1, "job 1 cannot start on 3 procs");

        // Repair at t=20: job 1 finally starts.
        p.on_node_repair(0, 20.0, &mut out);
        assert_eq!(p.queued_jobs(), 0);
        p.drain(&mut out);
        assert_eq!(completions(&out), vec![(1, 70.0)]);
    }

    #[test]
    fn node_fail_rejects_queued_jobs_with_lapsed_deadlines() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 2);
        let mut out = Vec::new();
        p.on_submit(&job(0, 0.0, 1000.0, 1000.0, 1e6, 2), 0.0, &mut out);
        // Estimate 100 with deadline 150: feasible only if started by t=50.
        p.advance_to(1.0, &mut out);
        p.on_submit(&job(1, 1.0, 100.0, 100.0, 150.0, 2), 1.0, &mut out);
        // The failure at t=200 triggers a queue re-examination which notices
        // job 1's deadline lapsed while it waited.
        let hit = p.on_node_fail(0, 200.0, &mut out);
        assert_eq!(hit[0].job, 0);
        assert!(rejected(&out).contains(&1));
    }

    #[test]
    fn simultaneous_failure_storm_runs_one_reclamation_pass() {
        // A 100-node storm delivered through the batch hook must cost ONE
        // scheduling sweep (capacity reclamation pass), not one per node —
        // and still preempt exactly the jobs sequential delivery would.
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 100);
        let mut out = Vec::new();
        for i in 0..10 {
            // Ten 10-proc jobs fill the machine.
            p.on_submit(&job(i, 0.0, 1000.0, 1000.0, 1e6, 10), 0.0, &mut out);
        }
        assert_eq!(p.queued_jobs(), 0, "machine exactly full");
        let before = p.scheduling_passes();
        let nodes: Vec<u32> = (0..100).collect();
        let hit = p.on_nodes_fail(&nodes, 10.0, &mut out);
        assert_eq!(hit.len(), 10, "every running job preempted");
        assert_eq!(
            p.scheduling_passes() - before,
            1,
            "one reclamation pass for the whole storm"
        );
        // And the batch result matches node-at-a-time delivery exactly.
        let mut q = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 100);
        let mut qout = Vec::new();
        for i in 0..10 {
            q.on_submit(&job(i, 0.0, 1000.0, 1000.0, 1e6, 10), 0.0, &mut qout);
        }
        let seq_before = q.scheduling_passes();
        let mut seq_hit = Vec::new();
        for n in 0..100u32 {
            seq_hit.extend(q.on_node_fail(n, 10.0, &mut qout));
        }
        assert_eq!(hit, seq_hit);
        assert_eq!(
            q.scheduling_passes() - seq_before,
            100,
            "scalar delivery pays a pass per node"
        );
    }

    #[test]
    fn drain_empties_queue() {
        let mut p = BackfillPolicy::new(PriorityOrder::Fcfs, EconomicModel::BidBased, 2);
        let jobs: Vec<Job> = (0..20)
            .map(|i| job(i, i as f64, 10.0, 10.0, 1e6, 1))
            .collect();
        let out = run(&mut p, &jobs);
        assert_eq!(completions(&out).len(), 20);
        assert_eq!(p.queued(), 0);
    }
}
