//! # ccs-policies — resource-management policies under evaluation
//!
//! The seven policies of paper Table V:
//!
//! | Policy      | Economic models        | Primary scheduling parameter |
//! |-------------|------------------------|------------------------------|
//! | FCFS-BF     | commodity + bid-based  | arrival time                 |
//! | SJF-BF      | commodity              | runtime (estimate)           |
//! | EDF-BF      | commodity + bid-based  | deadline                     |
//! | Libra       | commodity + bid-based  | deadline                     |
//! | Libra+$     | commodity              | deadline                     |
//! | LibraRiskD  | bid-based              | deadline                     |
//! | FirstReward | bid-based              | budget with penalty          |
//!
//! Every policy implements the [`Policy`] trait and is built through
//! [`build_policy`], which wires the right cluster model (space-shared for
//! the backfilling policies and FirstReward, time-shared proportional
//! sharing for the Libra family) and the right pricing for the economic
//! model in force.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backfill;
pub mod conservative;
pub mod first_reward;
pub mod libra;
pub mod traits;

pub use backfill::{BackfillOptions, BackfillPolicy, PriorityOrder};
pub use conservative::ConservativeBf;
pub use first_reward::{FirstRewardParams, FirstRewardPolicy};
pub use libra::{LibraPolicy, LibraVariant, NodeSelection};
pub use traits::{Interruption, Outcome, Policy, PolicyKind, RejectReason};

use ccs_economy::EconomicModel;

/// Instantiates a policy by kind for the given economic model over a cluster
/// of `nodes` processors.
pub fn build_policy(kind: PolicyKind, econ: EconomicModel, nodes: u32) -> Box<dyn Policy> {
    match kind {
        PolicyKind::FcfsBf => Box::new(BackfillPolicy::new(PriorityOrder::Fcfs, econ, nodes)),
        PolicyKind::SjfBf => Box::new(BackfillPolicy::new(PriorityOrder::Sjf, econ, nodes)),
        PolicyKind::EdfBf => Box::new(BackfillPolicy::new(PriorityOrder::Edf, econ, nodes)),
        PolicyKind::Libra => Box::new(LibraPolicy::new(LibraVariant::Plain, econ, nodes)),
        PolicyKind::LibraDollar => Box::new(LibraPolicy::new(LibraVariant::Dollar, econ, nodes)),
        PolicyKind::LibraRiskD => Box::new(LibraPolicy::new(LibraVariant::RiskD, econ, nodes)),
        PolicyKind::FirstReward => Box::new(FirstRewardPolicy::new(nodes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_policies() {
        for kind in [
            PolicyKind::FcfsBf,
            PolicyKind::SjfBf,
            PolicyKind::EdfBf,
            PolicyKind::Libra,
            PolicyKind::LibraDollar,
            PolicyKind::LibraRiskD,
            PolicyKind::FirstReward,
        ] {
            let p = build_policy(kind, EconomicModel::BidBased, 16);
            assert_eq!(p.name(), kind.name());
        }
    }
}
