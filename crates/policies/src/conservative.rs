//! Conservative backfilling (Mu'alem & Feitelson 2001 — the paper's
//! reference [19] studies EASY vs conservative on the same SP2 traces).
//!
//! Where EASY backfilling only protects the *head* of the queue,
//! conservative backfilling gives **every** queued job a reservation when
//! it arrives: a backfill move is allowed only if it delays *no* existing
//! reservation (judged, as always, from runtime estimates). This trades
//! some utilization for predictability — queued jobs can be given a start
//! guarantee at submission time.
//!
//! This policy is an extension beyond the paper's evaluated set (the paper
//! evaluates EASY variants only); it is provided as an additional baseline
//! and is exercised by the EASY-vs-conservative ablation.
//!
//! Implementation: a *profile* of free processors over time is maintained
//! as step functions; each job is placed at the earliest estimate-feasible
//! slot. Actual completions (which may differ from the estimates) trigger a
//! full re-plan of the waiting queue, preserving the relative reservation
//! order — the standard "compression" step of conservative backfilling.

use crate::traits::{Outcome, Policy, RejectReason};
use ccs_des::{EventQueue, SimTime};
use ccs_economy::{base_cost, EconomicModel};
use ccs_workload::{Job, JobId};
use std::collections::HashMap;

/// A planned (not yet started) job: its reservation start time.
#[derive(Clone, Copy, Debug)]
struct Reservation {
    job: Job,
    start: f64,
}

#[derive(Clone, Copy, Debug)]
struct RunInfo {
    start: f64,
    charged: Option<f64>,
    /// Estimate-based completion, used when planning reservations.
    est_finish: f64,
    procs: u32,
}

/// Conservative backfilling over space-shared processors (FCFS reservation
/// order).
pub struct ConservativeBf {
    econ: EconomicModel,
    nodes: u32,
    /// Processors actually occupied right now.
    busy: u32,
    /// Waiting jobs with reservations, in reservation order.
    plan: Vec<Reservation>,
    /// NOTE: deliberately the std (SipHash) map — `earliest_start`
    /// iterates `running.values()`, and that iteration order feeds the
    /// free-processor profile before a stable by-time sort, so swapping
    /// the hasher would reorder equal-time deltas and change outputs.
    running: HashMap<JobId, RunInfo>,
    completions: EventQueue<JobId>,
    /// Reusable profile buffers for `earliest_start` — placements happen
    /// on every submit/completion/replan, so they must not allocate.
    deltas_scratch: Vec<(f64, i64)>,
    candidates_scratch: Vec<f64>,
}

const T_EPS: f64 = 1e-9;

impl ConservativeBf {
    /// Creates a conservative-backfilling policy over `nodes` processors.
    pub fn new(econ: EconomicModel, nodes: u32) -> Self {
        ConservativeBf {
            econ,
            nodes,
            busy: 0,
            plan: Vec::new(),
            running: HashMap::new(),
            completions: EventQueue::new(),
            deltas_scratch: Vec::new(),
            candidates_scratch: Vec::new(),
        }
    }

    /// Number of queued (planned) jobs.
    pub fn queued(&self) -> usize {
        self.plan.len()
    }

    /// The generous admission control shared with the EASY policies.
    /// Returns the rejection reason when the job cannot be admitted.
    fn admission_error(&self, job: &Job, planned_start: f64) -> Option<RejectReason> {
        if planned_start + job.estimate > job.absolute_deadline() + T_EPS {
            return Some(RejectReason::EstimateExceedsDeadline);
        }
        if self.econ == EconomicModel::CommodityMarket && base_cost(job) > job.budget {
            return Some(RejectReason::OverBudget);
        }
        None
    }

    /// Earliest estimate-feasible start for `job` given the running set and
    /// the reservations in `plan_prefix` (all earlier-reserved jobs).
    ///
    /// Works on a step profile of free processors built from running jobs'
    /// estimated completions and the prefix reservations.
    fn earliest_start(
        &self,
        job: &Job,
        plan_prefix: &[Reservation],
        now: f64,
        deltas: &mut Vec<(f64, i64)>,
        candidates: &mut Vec<f64>,
    ) -> f64 {
        // Build change points: (time, delta free procs).
        deltas.clear();
        for r in self.running.values() {
            deltas.push((r.est_finish.max(now), r.procs as i64));
        }
        for res in plan_prefix {
            deltas.push((res.start, -(res.job.procs as i64)));
            deltas.push((res.start + res.job.estimate, res.job.procs as i64));
        }
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0));

        let busy_now: i64 = self.running.values().map(|r| r.procs as i64).sum();
        let mut free = self.nodes as i64 - busy_now;
        // Candidate start times: now and every change point.
        candidates.clear();
        candidates.push(now);
        candidates.extend(deltas.iter().map(|d| d.0));
        let need = job.procs as i64;

        for &cand in candidates.iter() {
            if cand < now {
                continue;
            }
            // Free processors throughout [cand, cand + estimate)?
            let mut f = free;
            let mut ok = true;
            // free procs at time cand:
            for &(t, d) in deltas.iter() {
                if t <= cand + T_EPS {
                    f += d;
                }
            }
            if f < need {
                continue;
            }
            // Check the window: apply deltas inside (cand, cand+est).
            let mut fw = f - need; // commit the job
            for &(t, d) in deltas.iter() {
                if t > cand + T_EPS && t < cand + job.estimate - T_EPS {
                    fw += d;
                    if fw < 0 {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return cand;
            }
        }
        // Fallback: after everything (cannot happen: the last candidate —
        // when all load drains — always fits).
        let _ = &mut free;
        unreachable!("a slot always exists once the machine drains")
    }

    /// Re-plans every queued job (in reservation order) from scratch — run
    /// after any event that changes the schedule. Jobs whose reservation can
    /// no longer meet their deadline are rejected.
    fn replan(&mut self, now: f64, out: &mut Vec<Outcome>) {
        let old_plan = std::mem::take(&mut self.plan);
        for res in old_plan {
            self.place(res.job, now, out);
        }
    }

    /// Computes a reservation for `job` and either starts it (reservation is
    /// now), queues it, or rejects it.
    fn place(&mut self, job: Job, now: f64, out: &mut Vec<Outcome>) {
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        let mut candidates = std::mem::take(&mut self.candidates_scratch);
        let start = self.earliest_start(&job, &self.plan, now, &mut deltas, &mut candidates);
        self.deltas_scratch = deltas;
        self.candidates_scratch = candidates;
        if let Some(reason) = self.admission_error(&job, start) {
            out.push(Outcome::Rejected {
                job: job.id,
                at: now,
                reason,
            });
            return;
        }
        // The profile is estimate-optimistic (overrunning jobs are treated
        // as releasing "now"), so gate actual starts on real occupancy.
        if start <= now + T_EPS && self.busy + job.procs <= self.nodes {
            let charged = match self.econ {
                EconomicModel::CommodityMarket => Some(base_cost(&job)),
                EconomicModel::BidBased => None,
            };
            self.completions
                .push(SimTime::new(now + job.runtime), job.id);
            out.push(Outcome::Accepted {
                job: job.id,
                at: now,
            });
            out.push(Outcome::Started {
                job: job.id,
                at: now,
            });
            self.busy += job.procs;
            self.running.insert(
                job.id,
                RunInfo {
                    start: now,
                    charged,
                    est_finish: now + job.estimate,
                    procs: job.procs,
                },
            );
        } else {
            self.plan.push(Reservation {
                job,
                start: start.max(now),
            });
        }
    }

    fn handle_completion(&mut self, job_id: JobId, finish: f64, out: &mut Vec<Outcome>) {
        let info = self
            .running
            .remove(&job_id)
            .expect("completion of unknown job");
        self.busy -= info.procs;
        out.push(Outcome::Completed {
            job: job_id,
            start: info.start,
            finish,
            charged: info.charged,
        });
        // Compression: early completions pull reservations forward; late
        // ones push them back. Either way, re-derive the plan.
        self.replan(finish, out);
    }
}

impl Policy for ConservativeBf {
    fn name(&self) -> &'static str {
        "Cons-BF"
    }

    fn on_submit(&mut self, job: &Job, now: f64, out: &mut Vec<Outcome>) {
        if job.procs > self.nodes {
            out.push(Outcome::Rejected {
                job: job.id,
                at: now,
                reason: RejectReason::TooLarge,
            });
            return;
        }
        self.place(*job, now, out);
    }

    fn next_event_time(&mut self) -> Option<f64> {
        self.completions.peek_time().map(|t| t.as_secs())
    }

    fn advance_to(&mut self, t: f64, out: &mut Vec<Outcome>) {
        loop {
            // Fire the next completion, or start the next due reservation,
            // whichever comes first within the horizon. Reservations can
            // mature between completions (exact-fit schedules with accurate
            // estimates), but an un-startable matured reservation (an
            // overrunning predecessor) simply waits for the next completion.
            let next_completion = self.completions.peek_time().map(|x| x.as_secs());
            let next_reservation = self
                .plan
                .iter()
                .map(|r| r.start)
                .filter(|&s| {
                    // Only reservations that could actually start.
                    self.plan
                        .iter()
                        .find(|r| r.start == s)
                        .map(|r| self.busy + r.job.procs <= self.nodes)
                        .unwrap_or(false)
                })
                .fold(f64::INFINITY, f64::min);
            match next_completion {
                Some(tc) if tc <= t && tc <= next_reservation => {
                    let (et, id) = self.completions.pop().expect("peeked");
                    self.handle_completion(id, et.as_secs(), out);
                }
                _ if next_reservation.is_finite() && next_reservation <= t => {
                    let before = self.plan.len() + self.running.len();
                    self.replan(next_reservation, out);
                    let progressed = self.plan.len() + self.running.len() != before
                        || self.plan.iter().all(|r| r.start > next_reservation + T_EPS);
                    if !progressed {
                        break; // blocked on an overrunning job: wait
                    }
                }
                _ => break,
            }
        }
    }

    fn drain(&mut self, out: &mut Vec<Outcome>) {
        // Completions always make progress; between them, matured
        // reservations start as capacity allows.
        while !self.completions.is_empty() || !self.plan.is_empty() {
            let before_running = self.running.len();
            let before_plan = self.plan.len();
            self.advance_to(f64::INFINITY, out);
            if self.running.len() == before_running && self.plan.len() == before_plan {
                // Fully blocked with nothing running: impossible unless the
                // plan is empty; guard against an infinite loop regardless.
                if self.completions.is_empty() {
                    // With nothing running, replan at the earliest
                    // reservation to force starts.
                    let t = self
                        .plan
                        .iter()
                        .map(|r| r.start)
                        .fold(f64::INFINITY, f64::min);
                    if t.is_finite() {
                        self.replan(t, out);
                    }
                    if self.running.is_empty() && !self.plan.is_empty() {
                        unreachable!("conservative plan wedged with an idle machine");
                    }
                }
            }
        }
        debug_assert!(self.plan.is_empty());
        debug_assert!(self.running.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_workload::Urgency;

    fn job(id: JobId, submit: f64, runtime: f64, estimate: f64, deadline: f64, procs: u32) -> Job {
        Job {
            id,
            submit,
            runtime,
            estimate,
            procs,
            urgency: Urgency::Low,
            deadline,
            budget: 1e12,
            penalty_rate: 1.0,
        }
    }

    fn run(policy: &mut ConservativeBf, jobs: &[Job]) -> Vec<Outcome> {
        let mut out = Vec::new();
        for j in jobs {
            policy.advance_to(j.submit, &mut out);
            policy.on_submit(j, j.submit, &mut out);
        }
        policy.drain(&mut out);
        out
    }

    fn finish_of(out: &[Outcome], id: JobId) -> f64 {
        out.iter()
            .find_map(|o| match o {
                Outcome::Completed { job, finish, .. } if *job == id => Some(*finish),
                _ => None,
            })
            .unwrap_or_else(|| panic!("job {id} never completed"))
    }

    #[test]
    fn immediate_start_on_idle_machine() {
        let mut p = ConservativeBf::new(EconomicModel::BidBased, 8);
        let out = run(&mut p, &[job(0, 0.0, 100.0, 100.0, 1e6, 4)]);
        assert_eq!(finish_of(&out, 0), 100.0);
    }

    #[test]
    fn fifo_service_when_machine_contended() {
        let mut p = ConservativeBf::new(EconomicModel::BidBased, 8);
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 8),
                job(1, 1.0, 100.0, 100.0, 1e6, 8),
            ],
        );
        assert_eq!(finish_of(&out, 0), 100.0);
        assert_eq!(finish_of(&out, 1), 200.0);
    }

    #[test]
    fn backfills_when_no_reservation_is_delayed() {
        let mut p = ConservativeBf::new(EconomicModel::BidBased, 8);
        // Job 0: 6 procs until 100. Job 1: 8 procs, reserved at 100.
        // Job 2: 2 procs for 50 s fits before job 1's reservation.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 6),
                job(1, 1.0, 100.0, 100.0, 1e6, 8),
                job(2, 2.0, 50.0, 50.0, 1e6, 2),
            ],
        );
        assert_eq!(finish_of(&out, 2), 52.0, "backfilled immediately");
        assert_eq!(finish_of(&out, 1), 200.0, "reservation preserved");
    }

    #[test]
    fn protects_every_reservation_not_just_the_head() {
        // EASY would backfill job 3 using the 'extra' slack of the head
        // reservation even if it delays job 2's (second) reservation;
        // conservative must not.
        let mut p = ConservativeBf::new(EconomicModel::BidBased, 4);
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 4), // runs now
                job(1, 1.0, 50.0, 50.0, 1e6, 4),   // reserved at 100
                job(2, 2.0, 50.0, 50.0, 1e6, 2),   // reserved at 150
                job(3, 3.0, 300.0, 300.0, 1e6, 2), // would delay job 2 if backfilled
            ],
        );
        assert!(
            finish_of(&out, 2) <= 200.0 + 1e-6,
            "job 2's reservation held"
        );
        assert!(finish_of(&out, 3) >= 300.0, "job 3 waited instead");
    }

    #[test]
    fn early_completion_compresses_the_plan() {
        let mut p = ConservativeBf::new(EconomicModel::BidBased, 4);
        // Job 0 claims 1000 s but finishes in 100 s; job 1's reservation
        // (planned at 1000) must compress to 100.
        let mut j0 = job(0, 0.0, 100.0, 1000.0, 1e6, 4);
        j0.estimate = 1000.0;
        let out = run(&mut p, &[j0, job(1, 1.0, 50.0, 50.0, 1e6, 4)]);
        assert_eq!(finish_of(&out, 1), 150.0, "compressed after early finish");
    }

    #[test]
    fn rejects_jobs_whose_reservation_misses_the_deadline() {
        let mut p = ConservativeBf::new(EconomicModel::BidBased, 4);
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 100.0, 100.0, 1e6, 4),
                job(1, 1.0, 100.0, 100.0, 120.0, 4), // would start at 100, end 200 > 121
            ],
        );
        assert!(out
            .iter()
            .any(|o| matches!(o, Outcome::Rejected { job: 1, .. })));
    }

    #[test]
    fn drains_large_contended_queues() {
        let mut p = ConservativeBf::new(EconomicModel::BidBased, 4);
        let jobs: Vec<Job> = (0..30)
            .map(|i| job(i, i as f64, 50.0, 60.0, 1e7, 1 + (i % 4)))
            .collect();
        let out = run(&mut p, &jobs);
        let completed = out
            .iter()
            .filter(|o| matches!(o, Outcome::Completed { .. }))
            .count();
        let rejected = out
            .iter()
            .filter(|o| matches!(o, Outcome::Rejected { .. }))
            .count();
        assert_eq!(completed + rejected, 30);
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn commodity_pricing_applies() {
        let mut p = ConservativeBf::new(EconomicModel::CommodityMarket, 4);
        let out = run(&mut p, &[job(0, 0.0, 100.0, 150.0, 1e6, 2)]);
        let charged = out
            .iter()
            .find_map(|o| match o {
                Outcome::Completed { charged, .. } => *charged,
                _ => None,
            })
            .unwrap();
        assert_eq!(charged, 300.0);
    }
}
