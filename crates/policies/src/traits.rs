//! The policy interface the service simulator drives.
//!
//! A policy owns its cluster model and scheduling state. The simulator
//! (ccs-simsvc) feeds it job submissions in arrival order, advancing the
//! policy's internal clock between arrivals, and finally drains it. The
//! policy reports everything that happens through [`Outcome`] events, from
//! which the four paper objectives are computed.

use ccs_workload::{Job, JobId};

/// Root cause of an SLA rejection — the label every policy attaches to
/// [`Outcome::Rejected`], surfaced per job by the trace layer and counted
/// in trace reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// The job requests more processors than the whole cluster owns.
    TooLarge,
    /// The deadline lapsed while the job waited in the queue.
    DeadlineLapsed,
    /// Estimated completion would overshoot the deadline.
    EstimateExceedsDeadline,
    /// Quoted cost exceeds the job's budget (commodity market).
    OverBudget,
    /// No node can supply the proportional share the deadline needs (Libra).
    InsufficientShare,
    /// Reward slack below the admission threshold (FirstReward).
    LowSlack,
    /// A reason outside the built-in taxonomy (custom policies).
    Other,
}

impl RejectReason {
    /// Every built-in reason, in a stable reporting order.
    pub const ALL: [RejectReason; 7] = [
        RejectReason::TooLarge,
        RejectReason::DeadlineLapsed,
        RejectReason::EstimateExceedsDeadline,
        RejectReason::OverBudget,
        RejectReason::InsufficientShare,
        RejectReason::LowSlack,
        RejectReason::Other,
    ];

    /// Stable snake_case code used in traces and reports.
    pub fn code(self) -> &'static str {
        match self {
            RejectReason::TooLarge => "too_large",
            RejectReason::DeadlineLapsed => "deadline_lapsed",
            RejectReason::EstimateExceedsDeadline => "estimate_exceeds_deadline",
            RejectReason::OverBudget => "over_budget",
            RejectReason::InsufficientShare => "insufficient_share",
            RejectReason::LowSlack => "low_slack",
            RejectReason::Other => "other",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Something observable that happened inside a policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// The SLA was accepted (job admitted) at time `at`.
    Accepted {
        /// Job concerned.
        job: JobId,
        /// Absolute time of acceptance.
        at: f64,
    },
    /// The job was rejected (SLA not accepted) at time `at`.
    Rejected {
        /// Job concerned.
        job: JobId,
        /// Absolute time of rejection.
        at: f64,
        /// Why the policy declined the SLA.
        reason: RejectReason,
    },
    /// The job began executing at time `at` (this is `tst_i` in the paper's
    /// wait objective, Eq. 1).
    Started {
        /// Job concerned.
        job: JobId,
        /// Absolute start time.
        at: f64,
    },
    /// The job finished executing.
    Completed {
        /// Job concerned.
        job: JobId,
        /// Absolute time execution began.
        start: f64,
        /// Absolute completion time (`tf_i`).
        finish: f64,
        /// Amount charged under commodity-market pricing, fixed at start
        /// time from the runtime estimate. `None` in the bid-based model,
        /// where utility is derived from the completion time instead.
        charged: Option<f64>,
    },
    /// A running job lost a node and was preempted (failure injection).
    /// The runner decides what happens next: a restart/resume attempt
    /// (later surfaced as [`Outcome::Restarted`]) or an abort.
    Interrupted {
        /// Job concerned.
        job: JobId,
        /// Absolute time of the node failure that hit it.
        at: f64,
    },
    /// A previously interrupted job was re-admitted for another attempt.
    Restarted {
        /// Job concerned.
        job: JobId,
        /// Absolute time of re-admission.
        at: f64,
    },
    /// A previously accepted job will never complete: after an
    /// interruption it could not be re-admitted (deadline lapsed, restart
    /// limit hit, …). The SLA is lost but — unlike a rejection — it *was*
    /// accepted, so the abort counts against reliability (Eq. 3).
    Aborted {
        /// Job concerned.
        job: JobId,
        /// Absolute time the job was given up on.
        at: f64,
    },
    /// A cluster node went down (failure injection).
    NodeFailed {
        /// Node index.
        node: u32,
        /// Absolute failure time.
        at: f64,
    },
    /// A failed cluster node came back up.
    NodeRepaired {
        /// Node index.
        node: u32,
        /// Absolute repair time.
        at: f64,
    },
}

/// A running job preempted by a node failure, as reported by
/// [`Policy::on_node_fail`]. The runner turns this into an
/// [`Outcome::Interrupted`] and decides between resubmission and abort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interruption {
    /// The preempted job.
    pub job: JobId,
    /// When its current attempt had started.
    pub started_at: f64,
    /// Processor-seconds of work still outstanding at the failure, as far
    /// as the policy can tell (actual remaining runtime, not estimate).
    pub remaining_work: f64,
}

/// A resource-management policy under evaluation.
pub trait Policy {
    /// Short display name, matching the paper (e.g. `"SJF-BF"`).
    fn name(&self) -> &'static str;

    /// Handles a job submitted at `now`. The simulator guarantees
    /// `advance_to(now)` has already been called.
    fn on_submit(&mut self, job: &Job, now: f64, out: &mut Vec<Outcome>);

    /// Time of the policy's next internal event (a completion, a share
    /// re-evaluation, …), if any.
    fn next_event_time(&mut self) -> Option<f64>;

    /// Processes internal events up to and including `t`.
    fn advance_to(&mut self, t: f64, out: &mut Vec<Outcome>);

    /// Runs the policy to quiescence after the last arrival. In a
    /// fault-free run this empties the queue; under failure injection the
    /// runner may give up on futile weather (see the drain stagnation cap
    /// in `ccs-simsvc`) and call this with jobs still queued — those stay
    /// accepted-but-unfulfilled and must not panic the policy.
    fn drain(&mut self, out: &mut Vec<Outcome>);

    /// Reacts to node `node` going down at `now` (failure injection): the
    /// policy must reclaim the lost capacity in its cluster model and
    /// report every preempted job as an [`Interruption`] — the *runner*
    /// owns the restart/abort decision. May also emit regular outcomes
    /// (e.g. a queued job rejected because the shrunken cluster can no
    /// longer meet its deadline). Default: failure-oblivious no-op, so
    /// custom policies keep compiling (and simply never lose capacity).
    fn on_node_fail(&mut self, node: u32, now: f64, out: &mut Vec<Outcome>) -> Vec<Interruption> {
        let _ = (node, now, out);
        Vec::new()
    }

    /// Reacts to node `node` coming back up at `now`: restore the capacity
    /// and (for queueing policies) try to start waiting jobs. Default no-op.
    fn on_node_repair(&mut self, node: u32, now: f64, out: &mut Vec<Outcome>) {
        let _ = (node, now, out);
    }

    /// Batch form of [`Policy::on_node_fail`]: every listed node goes down
    /// at the same instant `now`. The default loops the scalar hook, so the
    /// observable outcome stream is identical either way; policies with a
    /// per-failure reaction pass (capacity reclamation, a scheduling sweep,
    /// a share recompute) should override this to run that pass **once per
    /// batch** instead of once per node. The fault drain in `ccs-simsvc`
    /// feeds maximal equal-time runs through here.
    fn on_nodes_fail(
        &mut self,
        nodes: &[u32],
        now: f64,
        out: &mut Vec<Outcome>,
    ) -> Vec<Interruption> {
        let mut interruptions = Vec::new();
        for &node in nodes {
            interruptions.extend(self.on_node_fail(node, now, out));
        }
        interruptions
    }

    /// Batch form of [`Policy::on_node_repair`]; same contract as
    /// [`Policy::on_nodes_fail`]. Default loops the scalar hook.
    fn on_nodes_repair(&mut self, nodes: &[u32], now: f64, out: &mut Vec<Outcome>) {
        for &node in nodes {
            self.on_node_repair(node, now, out);
        }
    }

    /// Number of admitted jobs waiting to start (0 for policies that run
    /// jobs immediately on admission). The runner uses this during the
    /// drain phase to decide whether future repairs can still unblock work.
    fn queued_jobs(&self) -> usize {
        0
    }
}

/// Identifier of each concrete policy, as listed in paper Table V.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// First-Come-First-Serve with EASY backfilling.
    FcfsBf,
    /// Shortest-Job-First with EASY backfilling.
    SjfBf,
    /// Earliest-Deadline-First with EASY backfilling.
    EdfBf,
    /// Libra: deadline-driven proportional share with admission control.
    Libra,
    /// Libra with the enhanced utilization-adaptive pricing function.
    LibraDollar,
    /// Libra considering the risk of deadline delay on node selection.
    LibraRiskD,
    /// FirstReward: reward-ranked admission balancing earnings vs penalties.
    FirstReward,
}

impl PolicyKind {
    /// Display name used in figures and reports (paper naming).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::FcfsBf => "FCFS-BF",
            PolicyKind::SjfBf => "SJF-BF",
            PolicyKind::EdfBf => "EDF-BF",
            PolicyKind::Libra => "Libra",
            PolicyKind::LibraDollar => "Libra+$",
            PolicyKind::LibraRiskD => "LibraRiskD",
            PolicyKind::FirstReward => "FirstReward",
        }
    }

    /// The five policies the paper evaluates in the commodity market model.
    pub const COMMODITY: [PolicyKind; 5] = [
        PolicyKind::FcfsBf,
        PolicyKind::SjfBf,
        PolicyKind::EdfBf,
        PolicyKind::Libra,
        PolicyKind::LibraDollar,
    ];

    /// The five policies the paper evaluates in the bid-based model.
    pub const BID_BASED: [PolicyKind; 5] = [
        PolicyKind::FcfsBf,
        PolicyKind::EdfBf,
        PolicyKind::FirstReward,
        PolicyKind::Libra,
        PolicyKind::LibraRiskD,
    ];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_policy_sets() {
        assert_eq!(PolicyKind::COMMODITY.len(), 5);
        assert_eq!(PolicyKind::BID_BASED.len(), 5);
        assert!(PolicyKind::COMMODITY.contains(&PolicyKind::LibraDollar));
        assert!(!PolicyKind::COMMODITY.contains(&PolicyKind::FirstReward));
        assert!(PolicyKind::BID_BASED.contains(&PolicyKind::LibraRiskD));
        assert!(!PolicyKind::BID_BASED.contains(&PolicyKind::SjfBf));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PolicyKind::LibraDollar.name(), "Libra+$");
        assert_eq!(PolicyKind::SjfBf.name(), "SJF-BF");
        assert_eq!(format!("{}", PolicyKind::FirstReward), "FirstReward");
    }
}
