//! The Libra family: Libra, Libra+$, and LibraRiskD (paper Section 5.2).
//!
//! All three use deadline-driven proportional processor sharing with job
//! admission control: a new job is examined **immediately on submission**
//! (so accepted jobs never wait — the family's ideal `wait` objective) and
//! admitted only if enough nodes can supply its minimum processor-time share
//! `est/deadline`. Node selection is best fit: the nodes with the least
//! spare share that still fit are chosen, saturating nodes one by one.
//!
//! The variants differ in:
//!
//! - **Libra** — static shares, static deadline-incentive pricing
//!   (`γ·tr + δ·tr/d`) in the commodity model.
//! - **Libra+$** — Libra plus the utilization-adaptive pricing function
//!   `P_ij = α·PBase + β·PUtil_ij`; the job pays the highest per-unit price
//!   among its allocated nodes, and is rejected if that exceeds its budget.
//! - **LibraRiskD** — considers the *risk of deadline delay* when selecting
//!   nodes: only nodes with zero risk (no resident task running past its
//!   estimate) are eligible, and node demand is re-evaluated dynamically so
//!   shares freed by early-finishing jobs can be re-committed.

use crate::traits::{Interruption, Outcome, Policy, RejectReason};
use ccs_cluster::{JobCompletion, PsCluster, WeightMode};
use ccs_des::FastHashMap;
use ccs_economy::{
    libra_cost, libra_dollar_cost, libra_dollar_rate, EconomicModel, LibraDollarParams, LibraParams,
};
use ccs_workload::{Job, JobId};

/// Which member of the Libra family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LibraVariant {
    /// Plain Libra.
    Plain,
    /// Libra with the enhanced pricing function (Libra+$).
    Dollar,
    /// Libra with delay-risk-aware node selection (LibraRiskD).
    RiskD,
}

/// Node-selection strategy (the original Libra paper, Sherwani et al. 2004,
/// compares these placement strategies).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeSelection {
    /// Least spare share first: saturate nodes to their maximum (the
    /// paper's configuration).
    BestFit,
    /// Most spare share first: spread load evenly across nodes.
    WorstFit,
}

#[derive(Clone, Copy, Debug)]
struct Meta {
    start: f64,
    charged: Option<f64>,
}

/// A Libra-family policy instance.
pub struct LibraPolicy {
    variant: LibraVariant,
    econ: EconomicModel,
    cluster: PsCluster,
    // (the PsCluster carries the weight mode and escalation setting)
    selection: NodeSelection,
    libra_params: LibraParams,
    dollar_params: LibraDollarParams,
    /// Insert/remove only (never iterated), so the fast integer hasher is
    /// output-neutral here.
    meta: FastHashMap<JobId, Meta>,
    /// Reusable buffers for the per-submit node scan and the per-advance
    /// completion harvest — admission runs on every job, so neither may
    /// allocate.
    eligible_scratch: Vec<(f64, usize)>,
    picked_scratch: Vec<usize>,
    completions_scratch: Vec<JobCompletion>,
}

/// Share-fit slack for floating-point comparisons.
const SHARE_EPS: f64 = 1e-9;

impl LibraPolicy {
    /// Creates a Libra-family policy over `nodes` time-shared nodes.
    pub fn new(variant: LibraVariant, econ: EconomicModel, nodes: u32) -> Self {
        // All Libra variants re-evaluate demand from remaining *estimated*
        // work over remaining time to deadline (the proportional share is
        // adjusted as jobs progress — Sherwani et al. 2004). This is what
        // makes plain Libra vulnerable to inaccurate estimates: a task that
        // overran its estimate looks almost free, attracting new admissions
        // onto a node that will escalate when the overrun job's deadline
        // passes. LibraRiskD differs only in refusing such at-risk nodes
        // (Yeo & Buyya, ICPP 2006).
        let mode = WeightMode::Dynamic;
        LibraPolicy {
            variant,
            econ,
            cluster: PsCluster::new(nodes as usize, mode),
            selection: NodeSelection::BestFit,
            libra_params: LibraParams::default(),
            dollar_params: LibraDollarParams::default(),
            meta: FastHashMap::default(),
            eligible_scratch: Vec::new(),
            picked_scratch: Vec::new(),
            completions_scratch: Vec::new(),
        }
    }

    /// Ablation constructor: control the weight discipline and the
    /// deadline-escalation cascade of the underlying share engine.
    pub fn with_engine(
        variant: LibraVariant,
        econ: EconomicModel,
        nodes: u32,
        mode: WeightMode,
        escalation: bool,
    ) -> Self {
        LibraPolicy {
            variant,
            econ,
            cluster: PsCluster::with_escalation(nodes as usize, mode, escalation),
            selection: NodeSelection::BestFit,
            libra_params: LibraParams::default(),
            dollar_params: LibraDollarParams::default(),
            meta: FastHashMap::default(),
            eligible_scratch: Vec::new(),
            picked_scratch: Vec::new(),
            completions_scratch: Vec::new(),
        }
    }

    /// Heterogeneous-cluster constructor: one speed rating per node. The
    /// admission control demands `est/(deadline × rating)` of a node's
    /// share, so fast nodes host more concurrent work — Libra's
    /// computational-economy papers explicitly target such clusters.
    pub fn with_ratings(variant: LibraVariant, econ: EconomicModel, ratings: Vec<f64>) -> Self {
        LibraPolicy {
            variant,
            econ,
            cluster: PsCluster::with_ratings(ratings, WeightMode::Dynamic, true),
            selection: NodeSelection::BestFit,
            libra_params: LibraParams::default(),
            dollar_params: LibraDollarParams::default(),
            meta: FastHashMap::default(),
            eligible_scratch: Vec::new(),
            picked_scratch: Vec::new(),
            completions_scratch: Vec::new(),
        }
    }

    /// Overrides the node-selection strategy (best fit is the paper's).
    pub fn with_selection(mut self, selection: NodeSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Overrides the Libra pricing parameters (γ, δ).
    pub fn with_libra_params(mut self, p: LibraParams) -> Self {
        self.libra_params = p;
        self
    }

    /// Overrides the Libra+$ pricing parameters (α, β).
    pub fn with_dollar_params(mut self, p: LibraDollarParams) -> Self {
        self.dollar_params = p;
        self
    }

    /// Best-fit node selection: every eligible node has at least `required`
    /// spare share (and zero delay risk for LibraRiskD); the `procs` fullest
    /// eligible nodes are written into `picked` (true), or too few exist
    /// (false). Caller-supplied buffers keep the per-submit scan
    /// allocation-free.
    fn select_nodes(
        &self,
        estimate: f64,
        deadline: f64,
        procs: u32,
        now: f64,
        eligible: &mut Vec<(f64, usize)>,
        picked: &mut Vec<usize>,
    ) -> bool {
        eligible.clear();
        picked.clear();
        eligible.extend((0..self.cluster.nodes()).filter_map(|n| {
            if !self.cluster.node_up(n) {
                return None; // failed nodes host nothing
            }
            // Per-node requirement: fast nodes need less share.
            let required = self.cluster.required_share(n, estimate, deadline);
            if estimate > deadline * self.cluster.rating(n) {
                return None; // this node cannot make the deadline at all
            }
            // The cutoff form lets the share engine stop scanning a node's
            // residents as soon as a partial weight sum proves it too full —
            // the admission decision and the `free` key are byte-identical
            // to `free_share` plus the `free + SHARE_EPS < required` test.
            let free = self
                .cluster
                .free_share_if_fits(n, now, required, SHARE_EPS)?;
            if self.variant == LibraVariant::RiskD && self.cluster.node_at_risk(n, now) {
                return None;
            }
            Some((free, n))
        }));
        let need = procs as usize;
        if eligible.len() < need {
            return false;
        }
        // Only the `need` best nodes are handed out, so an O(n) selection
        // followed by sorting just that prefix replaces the full O(n log n)
        // sort. The comparator is total and tie-broken by node index (no two
        // entries compare equal), so the selected set — and therefore the
        // sorted prefix — is byte-identical to the full sort's prefix.
        match self.selection {
            // Best fit: least free share first (saturate nodes to their
            // maximum — the paper's configuration).
            NodeSelection::BestFit => {
                if need > 0 && eligible.len() > need {
                    eligible.select_nth_unstable_by(need - 1, |a, b| {
                        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
                    });
                }
                eligible[..need].sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            }
            // Worst fit: most free share first (balance the load).
            NodeSelection::WorstFit => {
                if need > 0 && eligible.len() > need {
                    eligible.select_nth_unstable_by(need - 1, |a, b| {
                        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
                    });
                }
                eligible[..need].sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            }
        }
        picked.extend(eligible[..need].iter().map(|e| e.1));
        true
    }

    /// Commodity-market price quote for `job` on `nodes`. `None` means the
    /// bid-based model is active and no quote applies.
    fn quote(&self, job: &Job, nodes: &[usize], now: f64) -> Option<f64> {
        if self.econ != EconomicModel::CommodityMarket {
            return None;
        }
        Some(match self.variant {
            LibraVariant::Plain | LibraVariant::RiskD => libra_cost(job, &self.libra_params),
            LibraVariant::Dollar => {
                let max_rate = nodes
                    .iter()
                    .map(|&n| {
                        let required = self.cluster.required_share(n, job.estimate, job.deadline);
                        let free_after = self.cluster.free_share(n, now) - required;
                        libra_dollar_rate(free_after, &self.dollar_params)
                    })
                    .fold(0.0, f64::max);
                libra_dollar_cost(job, max_rate)
            }
        })
    }
}

impl Policy for LibraPolicy {
    fn name(&self) -> &'static str {
        match self.variant {
            LibraVariant::Plain => "Libra",
            LibraVariant::Dollar => "Libra+$",
            LibraVariant::RiskD => "LibraRiskD",
        }
    }

    fn on_submit(&mut self, job: &Job, now: f64, out: &mut Vec<Outcome>) {
        let mut eligible = std::mem::take(&mut self.eligible_scratch);
        let mut nodes = std::mem::take(&mut self.picked_scratch);
        let found = self.select_nodes(
            job.estimate,
            job.deadline,
            job.procs,
            now,
            &mut eligible,
            &mut nodes,
        );
        self.eligible_scratch = eligible;
        if !found {
            self.picked_scratch = nodes;
            out.push(Outcome::Rejected {
                job: job.id,
                at: now,
                reason: RejectReason::InsufficientShare,
            });
            return;
        }
        let charged = self.quote(job, &nodes, now);
        if let Some(cost) = charged {
            if cost > job.budget {
                self.picked_scratch = nodes;
                out.push(Outcome::Rejected {
                    job: job.id,
                    at: now,
                    reason: RejectReason::OverBudget,
                });
                return;
            }
        }
        self.cluster.submit(job, &nodes, now);
        self.picked_scratch = nodes;
        self.meta.insert(
            job.id,
            Meta {
                start: now,
                charged,
            },
        );
        out.push(Outcome::Accepted {
            job: job.id,
            at: now,
        });
        out.push(Outcome::Started {
            job: job.id,
            at: now,
        });
    }

    fn next_event_time(&mut self) -> Option<f64> {
        self.cluster.next_event_time()
    }

    fn advance_to(&mut self, t: f64, out: &mut Vec<Outcome>) {
        let mut done_buf = std::mem::take(&mut self.completions_scratch);
        done_buf.clear();
        self.cluster.advance_into(t, &mut done_buf);
        for done in &done_buf {
            let meta = self
                .meta
                .remove(&done.job_id)
                .expect("completion of unknown job");
            out.push(Outcome::Completed {
                job: done.job_id,
                start: meta.start,
                finish: done.finish,
                charged: meta.charged,
            });
        }
        self.completions_scratch = done_buf;
    }

    fn drain(&mut self, out: &mut Vec<Outcome>) {
        self.advance_to(f64::INFINITY, out);
        debug_assert!(self.meta.is_empty(), "all accepted jobs must complete");
    }

    fn on_node_fail(&mut self, node: u32, now: f64, out: &mut Vec<Outcome>) -> Vec<Interruption> {
        self.on_nodes_fail(&[node], now, out)
    }

    fn on_node_repair(&mut self, node: u32, now: f64, _out: &mut Vec<Outcome>) {
        self.cluster.repair_node(node as usize, now);
    }

    fn on_nodes_fail(
        &mut self,
        nodes: &[u32],
        now: f64,
        _out: &mut Vec<Outcome>,
    ) -> Vec<Interruption> {
        // The share engine preempts every job with a task on any failed
        // node (cluster-wide: a gang-scheduled job cannot run short-handed).
        // The batch form accrues and recomputes each surviving node's
        // shares once per storm instead of once per failure event.
        let failed: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();
        self.cluster
            .fail_nodes(&failed, now)
            .into_iter()
            .map(|(job_id, remaining_work)| {
                let meta = self
                    .meta
                    .remove(&job_id)
                    .expect("preempted job must have metadata");
                Interruption {
                    job: job_id,
                    started_at: meta.start,
                    remaining_work,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_workload::Urgency;

    fn job(id: JobId, submit: f64, runtime: f64, estimate: f64, deadline: f64, procs: u32) -> Job {
        Job {
            id,
            submit,
            runtime,
            estimate,
            procs,
            urgency: Urgency::Low,
            deadline,
            budget: 1e12,
            penalty_rate: 1.0,
        }
    }

    fn run(policy: &mut LibraPolicy, jobs: &[Job]) -> Vec<Outcome> {
        let mut out = Vec::new();
        for j in jobs {
            policy.advance_to(j.submit, &mut out);
            policy.on_submit(j, j.submit, &mut out);
        }
        policy.drain(&mut out);
        out
    }

    fn accepted(out: &[Outcome]) -> Vec<JobId> {
        out.iter()
            .filter_map(|o| match o {
                Outcome::Accepted { job, .. } => Some(*job),
                _ => None,
            })
            .collect()
    }

    fn rejected(out: &[Outcome]) -> Vec<JobId> {
        out.iter()
            .filter_map(|o| match o {
                Outcome::Rejected { job, .. } => Some(*job),
                _ => None,
            })
            .collect()
    }

    fn finish_of(out: &[Outcome], id: JobId) -> f64 {
        out.iter()
            .find_map(|o| match o {
                Outcome::Completed { job, finish, .. } if *job == id => Some(*finish),
                _ => None,
            })
            .unwrap()
    }

    #[test]
    fn accepts_immediately_and_meets_deadline() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 4);
        let out = run(&mut p, &[job(0, 10.0, 100.0, 100.0, 400.0, 2)]);
        assert_eq!(accepted(&out), vec![0]);
        assert!(
            matches!(out[1], Outcome::Started { at, .. } if at == 10.0),
            "zero wait"
        );
        assert!(finish_of(&out, 0) <= 410.0);
    }

    #[test]
    fn rejects_when_share_unavailable() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 1);
        // First job takes share 0.8 on the single node; second needs 0.5.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 80.0, 80.0, 100.0, 1),
                job(1, 0.0, 50.0, 50.0, 100.0, 1),
            ],
        );
        assert_eq!(accepted(&out), vec![0]);
        assert_eq!(rejected(&out), vec![1]);
    }

    #[test]
    fn rejects_infeasible_deadline() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 4);
        let out = run(&mut p, &[job(0, 0.0, 100.0, 200.0, 150.0, 1)]);
        assert_eq!(rejected(&out), vec![0]);
    }

    #[test]
    fn rejects_when_not_enough_nodes() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 2);
        let out = run(&mut p, &[job(0, 0.0, 10.0, 10.0, 100.0, 3)]);
        assert_eq!(rejected(&out), vec![0]);
    }

    #[test]
    fn best_fit_saturates_nodes() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 2);
        // Job 0 puts share 0.5 on one node. Job 1 (share 0.3) must go to the
        // same node (best fit), leaving node 1 empty for the wide job 2.
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 50.0, 50.0, 100.0, 1),
                job(1, 0.0, 30.0, 30.0, 100.0, 1),
                job(2, 0.0, 90.0, 90.0, 100.0, 1),
            ],
        );
        assert_eq!(accepted(&out), vec![0, 1, 2], "best fit packs all three");
    }

    #[test]
    fn multi_node_jobs_take_share_everywhere() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 2);
        let out = run(
            &mut p,
            &[
                job(0, 0.0, 60.0, 60.0, 100.0, 2), // 0.6 share on both nodes
                job(1, 0.0, 50.0, 50.0, 100.0, 1), // needs 0.5: no node fits
            ],
        );
        assert_eq!(accepted(&out), vec![0]);
        assert_eq!(rejected(&out), vec![1]);
    }

    #[test]
    fn commodity_libra_charges_incentive_price() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::CommodityMarket, 4);
        let out = run(&mut p, &[job(0, 0.0, 100.0, 100.0, 400.0, 2)]);
        let charged = out
            .iter()
            .find_map(|o| match o {
                Outcome::Completed { charged, .. } => *charged,
                _ => None,
            })
            .unwrap();
        // (γ·100 + δ·100/400) × 2 procs = (100 + 0.25) × 2.
        assert!((charged - 200.5).abs() < 1e-9, "charged {charged}");
    }

    #[test]
    fn commodity_rejects_over_budget() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::CommodityMarket, 4);
        let mut j = job(0, 0.0, 100.0, 100.0, 400.0, 2);
        j.budget = 50.0;
        let out = run(&mut p, &[j]);
        assert_eq!(rejected(&out), vec![0]);
    }

    #[test]
    fn dollar_charges_more_on_busier_nodes() {
        // Submit an identical probe job on an idle cluster vs a loaded one.
        let probe = job(9, 0.0, 100.0, 100.0, 1000.0, 1);

        let mut idle = LibraPolicy::new(LibraVariant::Dollar, EconomicModel::CommodityMarket, 1);
        let out_idle = run(&mut idle, &[probe]);
        let charged_idle = out_idle
            .iter()
            .find_map(|o| match o {
                Outcome::Completed { charged, .. } => *charged,
                _ => None,
            })
            .unwrap();

        let mut busy = LibraPolicy::new(LibraVariant::Dollar, EconomicModel::CommodityMarket, 1);
        let load = job(0, 0.0, 700.0, 700.0, 1000.0, 1); // share 0.7
        let out_busy = run(&mut busy, &[load, probe]);
        let charged_busy = out_busy
            .iter()
            .find_map(|o| match o {
                Outcome::Completed {
                    job: 9, charged, ..
                } => *charged,
                _ => None,
            })
            .unwrap();
        assert!(
            charged_busy > charged_idle,
            "adaptive pricing: {charged_busy} <= {charged_idle}"
        );
    }

    #[test]
    fn riskd_avoids_at_risk_nodes() {
        let mut p = LibraPolicy::new(LibraVariant::RiskD, EconomicModel::BidBased, 2);
        // Job 0 on some node claims est 10 but runs 1000 (overruns at t=10).
        // At t=50 a new small job must avoid that node; a second new job
        // then cannot fit (other node taken) if both needed the risky node.
        let mut out = Vec::new();
        let j0 = job(0, 0.0, 1000.0, 10.0, 2000.0, 1);
        p.on_submit(&j0, 0.0, &mut out);
        p.advance_to(50.0, &mut out);
        let j1 = job(1, 50.0, 100.0, 100.0, 1500.0, 2); // needs BOTH nodes
        p.on_submit(&j1, 50.0, &mut out);
        assert_eq!(
            rejected(&out),
            vec![1],
            "one node is at risk, so a 2-node job cannot be placed"
        );
        let j2 = job(2, 50.0, 100.0, 100.0, 1500.0, 1); // single node is fine
        p.on_submit(&j2, 50.0, &mut out);
        assert!(accepted(&out).contains(&2));
        p.drain(&mut out);
    }

    #[test]
    fn plain_libra_ignores_risk() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 2);
        let mut out = Vec::new();
        let j0 = job(0, 0.0, 1000.0, 10.0, 2000.0, 1);
        p.on_submit(&j0, 0.0, &mut out);
        p.advance_to(50.0, &mut out);
        let j1 = job(1, 50.0, 100.0, 100.0, 1500.0, 2);
        p.on_submit(&j1, 50.0, &mut out);
        assert!(
            accepted(&out).contains(&1),
            "Libra places jobs on risky nodes"
        );
        p.drain(&mut out);
    }

    #[test]
    fn libra_family_reuses_dynamically_freed_share() {
        // A job at share 0.5 runs alone (rate 1) and so drains its demand
        // early; the Libra family re-evaluates shares from remaining
        // estimated work, so a later job can claim more than 1 − 0.5.
        for variant in [LibraVariant::Plain, LibraVariant::RiskD] {
            let mut p = LibraPolicy::new(variant, EconomicModel::BidBased, 1);
            let filler = job(0, 0.0, 500.0, 500.0, 1000.0, 1); // share 0.5
            let late = job(1, 400.0, 100.0, 100.0, 160.0, 1); // share 0.625
            let mut out = Vec::new();
            p.on_submit(&filler, 0.0, &mut out);
            p.advance_to(400.0, &mut out);
            p.on_submit(&late, 400.0, &mut out);
            p.drain(&mut out);
            assert!(
                accepted(&out).contains(&1),
                "{:?}: dynamically freed share admits the late job",
                variant
            );
        }
    }

    #[test]
    fn worst_fit_spreads_while_best_fit_packs() {
        // Two small jobs; best fit co-locates them, worst fit spreads them.
        let j0 = job(0, 0.0, 30.0, 30.0, 100.0, 1);
        let j1 = job(1, 0.0, 30.0, 30.0, 100.0, 1);
        let wide = job(2, 0.0, 90.0, 90.0, 100.0, 1); // needs 0.9 share

        let mut best = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 2);
        let out = run(&mut best, &[j0, j1, wide]);
        assert_eq!(accepted(&out), vec![0, 1, 2], "packing leaves a free node");

        let mut worst = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 2)
            .with_selection(NodeSelection::WorstFit);
        let out = run(&mut worst, &[j0, j1, wide]);
        assert_eq!(
            rejected(&out),
            vec![2],
            "spreading fragments the shares so the wide job cannot fit"
        );
    }

    #[test]
    fn heterogeneous_cluster_places_tight_jobs_on_fast_nodes() {
        // deadline < estimate: impossible on a 1x node, fine on the 4x node.
        let mut p = LibraPolicy::with_ratings(
            LibraVariant::Plain,
            EconomicModel::BidBased,
            vec![1.0, 1.0, 4.0],
        );
        let tight1 = job(0, 0.0, 100.0, 100.0, 50.0, 1);
        let tight2 = job(1, 0.0, 100.0, 100.0, 50.0, 2); // needs 2 fast nodes: impossible
        let out = run(&mut p, &[tight1, tight2]);
        assert!(accepted(&out).contains(&0), "the 4x node hosts it");
        assert_eq!(rejected(&out), vec![1], "only one node is fast enough");
        // And the accepted job actually met its deadline (ran at 4x: 25 s).
        assert!(
            finish_of(&out, 0) <= 50.0 + 1e-6,
            "finished at {}",
            finish_of(&out, 0)
        );
    }

    #[test]
    fn node_fail_interrupts_and_down_node_is_unselectable() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 2);
        let mut out = Vec::new();
        let wide = job(0, 0.0, 100.0, 100.0, 400.0, 2);
        p.on_submit(&wide, 0.0, &mut out);
        p.advance_to(10.0, &mut out);
        let hit = p.on_node_fail(1, 10.0, &mut out);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].job, 0);
        assert_eq!(hit[0].started_at, 0.0);
        assert!(hit[0].remaining_work > 0.0);
        // Another 2-node job cannot be placed while node 1 is down.
        let j1 = job(1, 20.0, 10.0, 10.0, 400.0, 2);
        p.advance_to(20.0, &mut out);
        p.on_submit(&j1, 20.0, &mut out);
        assert_eq!(rejected(&out), vec![1]);
        // After repair it fits.
        p.on_node_repair(1, 30.0, &mut out);
        let j2 = job(2, 40.0, 10.0, 10.0, 400.0, 2);
        p.advance_to(40.0, &mut out);
        p.on_submit(&j2, 40.0, &mut out);
        assert!(accepted(&out).contains(&2));
        p.drain(&mut out);
    }

    #[test]
    fn wait_is_always_zero() {
        let mut p = LibraPolicy::new(LibraVariant::Plain, EconomicModel::BidBased, 4);
        let jobs: Vec<Job> = (0..10)
            .map(|i| job(i, i as f64 * 10.0, 20.0, 20.0, 400.0, 1))
            .collect();
        let out = run(&mut p, &jobs);
        for o in &out {
            if let Outcome::Started { job, at } = o {
                assert_eq!(*at, jobs[*job as usize].submit, "start == submit");
            }
        }
    }
}
