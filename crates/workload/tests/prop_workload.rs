//! Property-based tests of the workload pipeline.

use ccs_workload::swf::{parse, to_base_jobs, write, SwfRecord};
use ccs_workload::{apply_scenario, QosConfig, ScenarioTransform, SdscSp2Model};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = SwfRecord> {
    (
        1i64..100_000,
        0.0f64..1e7,
        (1.0f64..1e5, 1i64..129, 1.0f64..1e5),
    )
        .prop_map(
            |(job_number, submit, (runtime, procs, req_time))| SwfRecord {
                job_number,
                submit,
                wait: 0.0,
                runtime,
                used_procs: procs,
                avg_cpu: -1.0,
                used_mem: -1.0,
                req_procs: procs,
                req_time,
                req_mem: -1.0,
                status: 1,
                uid: 1,
                gid: 1,
                exe: 1,
                queue: 1,
                partition: 1,
                preceding: -1,
                think_time: -1.0,
            },
        )
}

proptest! {
    /// SWF write → parse is lossless for any record set.
    #[test]
    fn swf_round_trip(records in prop::collection::vec(record_strategy(), 0..50)) {
        let text = write(&records);
        let parsed = parse(&text).unwrap();
        prop_assert_eq!(records, parsed);
    }

    /// Conversion to base jobs always yields sorted, rebased, dense output.
    #[test]
    fn base_jobs_well_formed(records in prop::collection::vec(record_strategy(), 1..60)) {
        let jobs = to_base_jobs(&records, 128, None);
        if let Some(first) = jobs.first() {
            prop_assert_eq!(first.submit, 0.0);
        }
        for (i, w) in jobs.windows(2).enumerate() {
            let _ = i;
            prop_assert!(w[1].submit >= w[0].submit);
        }
        for (i, j) in jobs.iter().enumerate() {
            prop_assert_eq!(j.id as usize, i);
            prop_assert!(j.runtime > 0.0);
            prop_assert!(j.procs >= 1 && j.procs <= 128);
        }
    }

    /// QoS annotation always produces physically sensible jobs, for any
    /// scenario parameters in Table VI's ranges.
    #[test]
    fn scenario_outputs_sane(
        seed in any::<u64>(),
        pct_high in 0.0f64..100.0,
        bias in 1.0f64..10.0,
        ratio in 1.0f64..10.0,
        low_mean in 1.0f64..10.0,
        arrival in 0.02f64..1.0,
        inaccuracy in 0.0f64..100.0,
    ) {
        let base = SdscSp2Model { jobs: 30, ..Default::default() }.generate(seed);
        let mut qos = QosConfig {
            pct_high_urgency: pct_high,
            ..Default::default()
        };
        qos.deadline.bias = bias;
        qos.budget.high_low_ratio = ratio;
        qos.penalty.low_mean = low_mean;
        let t = ScenarioTransform {
            qos,
            arrival_delay_factor: arrival,
            inaccuracy_pct: inaccuracy,
        };
        let jobs = apply_scenario(&base, &t, seed);
        prop_assert_eq!(jobs.len(), base.len());
        let mut prev = f64::NEG_INFINITY;
        for j in &jobs {
            prop_assert!(j.submit >= prev, "arrivals sorted");
            prev = j.submit;
            prop_assert!(j.runtime > 0.0);
            prop_assert!(j.estimate >= 1.0);
            prop_assert!(j.deadline > 0.0);
            prop_assert!(j.budget > 0.0);
            prop_assert!(j.penalty_rate > 0.0);
            prop_assert!(j.procs >= 1 && j.procs <= 128);
        }
    }

    /// The estimate under inaccuracy x% always lies between the runtime and
    /// the trace estimate (monotone interpolation).
    #[test]
    fn estimate_interpolation_bounded(seed in any::<u64>(), x in 0.0f64..100.0) {
        let base = SdscSp2Model { jobs: 20, ..Default::default() }.generate(seed);
        let t = ScenarioTransform { inaccuracy_pct: x, ..Default::default() };
        let jobs = apply_scenario(&base, &t, seed);
        for (j, b) in jobs.iter().zip(&base) {
            let lo = b.runtime.min(b.trace_estimate).max(1.0) - 1e-9;
            let hi = b.runtime.max(b.trace_estimate) + 1e-9;
            prop_assert!(j.estimate >= lo && j.estimate <= hi,
                "estimate {} outside [{lo}, {hi}]", j.estimate);
        }
    }

    /// Urgency classes see the right side of the deadline/budget split on
    /// average (statistical, so use a fixed large sample per case).
    #[test]
    fn urgency_split_direction(seed in 0u64..1000) {
        let base = SdscSp2Model { jobs: 400, ..Default::default() }.generate(seed);
        let t = ScenarioTransform {
            qos: QosConfig { pct_high_urgency: 50.0, ..Default::default() },
            ..Default::default()
        };
        let jobs = apply_scenario(&base, &t, seed);
        let mean = |hi: bool, f: &dyn Fn(&ccs_workload::Job) -> f64| {
            let v: Vec<f64> = jobs
                .iter()
                .filter(|j| (j.urgency == ccs_workload::Urgency::High) == hi)
                .map(f)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        prop_assert!(mean(true, &|j| j.deadline / j.runtime) < mean(false, &|j| j.deadline / j.runtime));
        prop_assert!(mean(true, &|j| j.budget / j.work().max(1.0)) > mean(false, &|j| j.budget / j.work().max(1.0)));
    }
}
