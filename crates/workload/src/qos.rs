//! QoS annotation: deadlines, budgets, and penalty rates.
//!
//! The trace has no QoS attributes, so the paper synthesizes them (Section
//! 5.3) through two *urgency classes* whose attribute factors are normally
//! distributed, linked by a *high:low ratio*, and skewed by a *bias* that
//! counteracts every attribute being a pure multiple of runtime:
//!
//! - **deadline**: `d_i = F_d · tr_i`. High-urgency jobs draw `F_d` around
//!   the *low-value mean*; low-urgency jobs around `low-value mean × ratio`
//!   (a higher ratio gives low-urgency jobs *longer* deadlines).
//! - **budget**: `b_i = F_b · tr_i · procs_i · BASE_PRICE`. High-urgency jobs
//!   draw `F_b` around `low-value mean × ratio`; low-urgency jobs around the
//!   low-value mean.
//! - **penalty rate**: `pr_i = F_p · procs_i · BASE_PRICE` dollars per second
//!   of delay, with the same high/low structure as budget.
//! - **bias** `β`: jobs longer than the mean runtime get their factor divided
//!   by `β`; shorter jobs get it multiplied (paper Section 5.3).

use crate::job::{BaseJob, Job, Urgency};
use ccs_des::dist::{Distribution, TruncatedNormal};
use ccs_des::SimRng;
use serde::{Deserialize, Serialize};

/// Flat price of one processor-second, in dollars. The paper sets
/// `PBase_j = $1 per second` for every node.
pub const BASE_PRICE: f64 = 1.0;

/// Distributional spec for one QoS attribute factor (deadline, budget, or
/// penalty-rate factor).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FactorSpec {
    /// Mean factor of the *low-value* class (paper Table VI "low-value mean").
    pub low_mean: f64,
    /// Ratio of the high-value class mean to the low-value class mean
    /// (paper Table VI "high:low ratio").
    pub high_low_ratio: f64,
    /// Bias `β ≥ 1` applied against runtime length (paper Table VI "bias").
    pub bias: f64,
    /// Coefficient of variation of the truncated-normal factor draw.
    pub cv: f64,
}

impl Default for FactorSpec {
    fn default() -> Self {
        // Paper Table VI defaults (underlined values; see DESIGN.md §4).
        FactorSpec {
            low_mean: 4.0,
            high_low_ratio: 4.0,
            bias: 2.0,
            cv: 0.2,
        }
    }
}

impl FactorSpec {
    /// Mean factor for the class holding the *high* value of this attribute.
    pub fn high_mean(&self) -> f64 {
        self.low_mean * self.high_low_ratio
    }
}

/// Full QoS annotation configuration (one experiment's settings).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QosConfig {
    /// Percentage (0–100) of jobs in the high-urgency class.
    pub pct_high_urgency: f64,
    /// Deadline factor spec. High-urgency ⇒ *low* `d/tr`.
    pub deadline: FactorSpec,
    /// Budget factor spec. High-urgency ⇒ *high* `b/base-cost`.
    pub budget: FactorSpec,
    /// Penalty-rate factor spec. High-urgency ⇒ *high* rate.
    pub penalty: FactorSpec,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            pct_high_urgency: 20.0,
            deadline: FactorSpec::default(),
            budget: FactorSpec::default(),
            penalty: FactorSpec::default(),
        }
    }
}

/// Minimum admissible deadline factor: a deadline can never be shorter than
/// the runtime itself plus a small scheduling margin.
const MIN_DEADLINE_FACTOR: f64 = 1.05;

/// Applies the bias transform: long jobs get `factor/β`, short jobs get
/// `factor·β` (paper Section 5.3).
fn apply_bias(factor: f64, runtime: f64, mean_runtime: f64, bias: f64) -> f64 {
    if runtime > mean_runtime {
        factor / bias
    } else {
        factor * bias
    }
}

/// Draws the three QoS factors for one job and builds the annotated [`Job`].
///
/// `inaccuracy_pct` interpolates the runtime estimate between perfectly
/// accurate (0) and the trace's own estimate (100), per paper Section 5.3.
pub fn annotate_job(
    base: &BaseJob,
    cfg: &QosConfig,
    mean_runtime: f64,
    inaccuracy_pct: f64,
    rng: &mut SimRng,
) -> Job {
    let urgency = if rng.bernoulli(cfg.pct_high_urgency / 100.0) {
        Urgency::High
    } else {
        Urgency::Low
    };

    // Deadline: HIGH urgency => low d/tr (mean = low_mean).
    let d_mean = match urgency {
        Urgency::High => cfg.deadline.low_mean,
        Urgency::Low => cfg.deadline.high_mean(),
    };
    let d_factor = TruncatedNormal::at_least(d_mean, cfg.deadline.cv * d_mean, MIN_DEADLINE_FACTOR)
        .sample(rng);
    let d_factor = apply_bias(d_factor, base.runtime, mean_runtime, cfg.deadline.bias);

    // Budget: HIGH urgency => high b/f(tr) (mean = low_mean * ratio).
    let b_mean = match urgency {
        Urgency::High => cfg.budget.high_mean(),
        Urgency::Low => cfg.budget.low_mean,
    };
    let b_factor = TruncatedNormal::at_least(b_mean, cfg.budget.cv * b_mean, 0.5).sample(rng);
    let b_factor = apply_bias(b_factor, base.runtime, mean_runtime, cfg.budget.bias);

    // Penalty rate: HIGH urgency => high pr/g(tr).
    let p_mean = match urgency {
        Urgency::High => cfg.penalty.high_mean(),
        Urgency::Low => cfg.penalty.low_mean,
    };
    let p_factor = TruncatedNormal::at_least(p_mean, cfg.penalty.cv * p_mean, 0.05).sample(rng);
    let p_factor = apply_bias(p_factor, base.runtime, mean_runtime, cfg.penalty.bias);

    let estimate =
        (base.runtime + (base.trace_estimate - base.runtime) * inaccuracy_pct / 100.0).max(1.0);

    Job {
        id: base.id,
        submit: base.submit,
        runtime: base.runtime,
        estimate,
        procs: base.procs,
        urgency,
        deadline: d_factor * base.runtime,
        budget: b_factor * base.runtime * base.procs as f64 * BASE_PRICE,
        penalty_rate: p_factor * base.procs as f64 * BASE_PRICE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(id: u32, runtime: f64) -> BaseJob {
        BaseJob {
            id,
            submit: id as f64 * 100.0,
            runtime,
            trace_estimate: runtime * 2.0,
            procs: 4,
        }
    }

    fn annotate_many(cfg: &QosConfig, n: u32) -> Vec<Job> {
        let master = SimRng::seed_from(11);
        (0..n)
            .map(|i| {
                let mut rng = master.fork(i as u64);
                annotate_job(&base(i, 1000.0), cfg, 1000.0, 0.0, &mut rng)
            })
            .collect()
    }

    #[test]
    fn urgency_mix_matches_percentage() {
        let cfg = QosConfig {
            pct_high_urgency: 30.0,
            ..Default::default()
        };
        let jobs = annotate_many(&cfg, 5000);
        let high = jobs.iter().filter(|j| j.urgency == Urgency::High).count() as f64 / 5000.0;
        assert!((high - 0.3).abs() < 0.03, "high fraction {high}");
    }

    #[test]
    fn all_high_or_all_low_extremes() {
        let all_high = QosConfig {
            pct_high_urgency: 100.0,
            ..Default::default()
        };
        assert!(annotate_many(&all_high, 100)
            .iter()
            .all(|j| j.urgency == Urgency::High));
        let all_low = QosConfig {
            pct_high_urgency: 0.0,
            ..Default::default()
        };
        assert!(annotate_many(&all_low, 100)
            .iter()
            .all(|j| j.urgency == Urgency::Low));
    }

    #[test]
    fn high_urgency_has_tighter_deadlines_and_bigger_budgets() {
        let cfg = QosConfig {
            pct_high_urgency: 50.0,
            ..Default::default()
        };
        let jobs = annotate_many(&cfg, 4000);
        let mean = |f: &dyn Fn(&Job) -> f64, u: Urgency| {
            let sel: Vec<f64> = jobs.iter().filter(|j| j.urgency == u).map(f).collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let d_high = mean(&|j| j.deadline / j.runtime, Urgency::High);
        let d_low = mean(&|j| j.deadline / j.runtime, Urgency::Low);
        assert!(
            d_high < d_low,
            "high urgency should have tighter deadlines: {d_high} vs {d_low}"
        );
        let b_high = mean(&|j| j.budget, Urgency::High);
        let b_low = mean(&|j| j.budget, Urgency::Low);
        assert!(
            b_high > b_low,
            "high urgency should pay more: {b_high} vs {b_low}"
        );
        let p_high = mean(&|j| j.penalty_rate, Urgency::High);
        let p_low = mean(&|j| j.penalty_rate, Urgency::Low);
        assert!(p_high > p_low);
    }

    #[test]
    fn bias_shortens_deadlines_of_long_jobs() {
        let cfg = QosConfig {
            pct_high_urgency: 0.0,
            ..Default::default()
        };
        let master = SimRng::seed_from(3);
        let mut d_long = 0.0;
        let mut d_short = 0.0;
        for i in 0..500u32 {
            let mut rng = master.fork(i as u64);
            let long = annotate_job(&base(i, 2000.0), &cfg, 1000.0, 0.0, &mut rng);
            let mut rng = master.fork(i as u64);
            let short = annotate_job(&base(i, 500.0), &cfg, 1000.0, 0.0, &mut rng);
            d_long += long.deadline / long.runtime;
            d_short += short.deadline / short.runtime;
        }
        // bias 2: long jobs' factors divided by 2, short multiplied by 2.
        assert!(
            d_short / d_long > 3.0,
            "expected ~4x spread, got {}",
            d_short / d_long
        );
    }

    #[test]
    fn inaccuracy_interpolates_estimates() {
        let cfg = QosConfig::default();
        let master = SimRng::seed_from(9);
        let b = base(0, 1000.0); // trace estimate 2000
        let mut rng = master.fork(0);
        let j0 = annotate_job(&b, &cfg, 1000.0, 0.0, &mut rng);
        assert_eq!(j0.estimate, 1000.0, "0 % inaccuracy = perfect estimate");
        let mut rng2 = master.fork(0);
        let j100 = annotate_job(&b, &cfg, 1000.0, 100.0, &mut rng2);
        assert_eq!(j100.estimate, 2000.0, "100 % inaccuracy = trace estimate");
        let mut rng3 = master.fork(0);
        let j50 = annotate_job(&b, &cfg, 1000.0, 50.0, &mut rng3);
        assert_eq!(j50.estimate, 1500.0);
    }

    #[test]
    fn deadline_always_exceeds_runtime_for_unbiased_short_jobs() {
        // With bias >= 1 and runtime <= mean, factor >= MIN_DEADLINE_FACTOR.
        let cfg = QosConfig {
            pct_high_urgency: 100.0,
            deadline: FactorSpec {
                low_mean: 1.1,
                high_low_ratio: 1.0,
                bias: 1.0,
                cv: 0.5,
            },
            ..Default::default()
        };
        let jobs = annotate_many(&cfg, 1000);
        assert!(jobs.iter().all(|j| j.deadline >= j.runtime * 1.049));
    }

    #[test]
    fn budgets_and_penalties_positive() {
        let jobs = annotate_many(&QosConfig::default(), 1000);
        assert!(jobs.iter().all(|j| j.budget > 0.0 && j.penalty_rate > 0.0));
    }
}
