//! Standard Workload Format (SWF) parsing and writing.
//!
//! SWF is the format of the Parallel Workloads Archive (Feitelson). Each
//! non-comment line has 18 whitespace-separated fields; `-1` marks a missing
//! value. This module parses the fields the simulation needs and can write
//! them back out, so synthetic workloads can also be exported for use with
//! other tools.

use crate::job::{BaseJob, JobId};
use std::fmt::Write as _;

/// One raw SWF record (all 18 fields, unvalidated).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwfRecord {
    /// Field 1: job number.
    pub job_number: i64,
    /// Field 2: submit time (s).
    pub submit: f64,
    /// Field 3: wait time (s).
    pub wait: f64,
    /// Field 4: run time (s).
    pub runtime: f64,
    /// Field 5: number of allocated processors.
    pub used_procs: i64,
    /// Field 6: average CPU time used (s).
    pub avg_cpu: f64,
    /// Field 7: used memory (KB).
    pub used_mem: f64,
    /// Field 8: requested number of processors.
    pub req_procs: i64,
    /// Field 9: requested time — the user runtime estimate (s).
    pub req_time: f64,
    /// Field 10: requested memory (KB).
    pub req_mem: f64,
    /// Field 11: completion status.
    pub status: i64,
    /// Field 12: user id.
    pub uid: i64,
    /// Field 13: group id.
    pub gid: i64,
    /// Field 14: executable (application) number.
    pub exe: i64,
    /// Field 15: queue number.
    pub queue: i64,
    /// Field 16: partition number.
    pub partition: i64,
    /// Field 17: preceding job number.
    pub preceding: i64,
    /// Field 18: think time from preceding job (s).
    pub think_time: f64,
}

/// Error produced while parsing an SWF document.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parses an SWF document (text) into records, skipping `;` comment lines
/// and blank lines.
pub fn parse(text: &str) -> Result<Vec<SwfRecord>, SwfError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 18 {
            return Err(SwfError {
                line: idx + 1,
                message: format!("expected 18 fields, found {}", fields.len()),
            });
        }
        let f_i64 = |k: usize| -> Result<i64, SwfError> {
            fields[k].parse::<i64>().map_err(|e| SwfError {
                line: idx + 1,
                message: format!("field {}: {e}", k + 1),
            })
        };
        let f_f64 = |k: usize| -> Result<f64, SwfError> {
            fields[k].parse::<f64>().map_err(|e| SwfError {
                line: idx + 1,
                message: format!("field {}: {e}", k + 1),
            })
        };
        out.push(SwfRecord {
            job_number: f_i64(0)?,
            submit: f_f64(1)?,
            wait: f_f64(2)?,
            runtime: f_f64(3)?,
            used_procs: f_i64(4)?,
            avg_cpu: f_f64(5)?,
            used_mem: f_f64(6)?,
            req_procs: f_i64(7)?,
            req_time: f_f64(8)?,
            req_mem: f_f64(9)?,
            status: f_i64(10)?,
            uid: f_i64(11)?,
            gid: f_i64(12)?,
            exe: f_i64(13)?,
            queue: f_i64(14)?,
            partition: f_i64(15)?,
            preceding: f_i64(16)?,
            think_time: f_f64(17)?,
        });
    }
    Ok(out)
}

/// Serializes records back to SWF text (one line per record, no header).
pub fn write(records: &[SwfRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 80);
    for r in records {
        let _ = writeln!(
            s,
            "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            r.job_number,
            r.submit,
            r.wait,
            r.runtime,
            r.used_procs,
            r.avg_cpu,
            r.used_mem,
            r.req_procs,
            r.req_time,
            r.req_mem,
            r.status,
            r.uid,
            r.gid,
            r.exe,
            r.queue,
            r.partition,
            r.preceding,
            r.think_time
        );
    }
    s
}

/// Converts SWF records into [`BaseJob`]s suitable for simulation.
///
/// Filtering matches common methodology: jobs must have a positive runtime
/// and processor count no larger than `max_procs`. Missing processor counts
/// fall back from requested to used; missing estimates fall back to the
/// runtime itself (a perfectly accurate estimate). Submit times are shifted
/// so the first job arrives at t = 0, and `last_n` (if given) keeps only the
/// trailing subset — the paper uses the last 5000 jobs of SDSC SP2.
pub fn to_base_jobs(records: &[SwfRecord], max_procs: u32, last_n: Option<usize>) -> Vec<BaseJob> {
    let mut jobs: Vec<BaseJob> = records
        .iter()
        .filter_map(|r| {
            let procs = if r.req_procs > 0 {
                r.req_procs
            } else {
                r.used_procs
            };
            if r.runtime <= 0.0 || procs <= 0 || procs > max_procs as i64 {
                return None;
            }
            let estimate = if r.req_time > 0.0 {
                r.req_time
            } else {
                r.runtime
            };
            Some(BaseJob {
                id: 0, // assigned after filtering
                submit: r.submit,
                runtime: r.runtime,
                trace_estimate: estimate,
                procs: procs as u32,
            })
        })
        .collect();
    jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit));
    if let Some(n) = last_n {
        if jobs.len() > n {
            jobs.drain(..jobs.len() - n);
        }
    }
    let t0 = jobs.first().map(|j| j.submit).unwrap_or(0.0);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = i as JobId;
        j.submit -= t0;
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; SDSC SP2 sample
; MaxProcs: 128
1 0 10 3600 8 -1 -1 8 7200 -1 1 1 1 1 1 1 -1 -1
2 100 0 60 4 -1 -1 4 120 -1 1 2 1 1 1 1 -1 -1
3 250 5 -1 16 -1 -1 16 500 -1 0 3 1 1 1 1 -1 -1
4 300 5 500 0 -1 -1 0 600 -1 1 3 1 1 1 1 -1 -1
5 400 5 500 256 -1 -1 256 600 -1 1 3 1 1 1 1 -1 -1
";

    #[test]
    fn parses_fields_and_skips_comments() {
        let recs = parse(SAMPLE).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].job_number, 1);
        assert_eq!(recs[0].runtime, 3600.0);
        assert_eq!(recs[0].req_time, 7200.0);
        assert_eq!(recs[1].req_procs, 4);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("18 fields"));

        let err = parse("1 0 10 x 8 -1 -1 8 7200 -1 1 1 1 1 1 1 -1 -1\n").unwrap_err();
        assert!(err.message.contains("field 4"));
    }

    #[test]
    fn filtering_drops_invalid_jobs() {
        let recs = parse(SAMPLE).unwrap();
        let jobs = to_base_jobs(&recs, 128, None);
        // Job 3 has runtime -1, job 4 has 0 procs, job 5 exceeds 128 procs.
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].procs, 8);
        assert_eq!(jobs[1].procs, 4);
    }

    #[test]
    fn submit_times_rebased_and_ids_dense() {
        let recs = parse(SAMPLE).unwrap();
        let jobs = to_base_jobs(&recs, 128, None);
        assert_eq!(jobs[0].submit, 0.0);
        assert_eq!(jobs[1].submit, 100.0);
        assert_eq!(jobs[0].id, 0);
        assert_eq!(jobs[1].id, 1);
    }

    #[test]
    fn last_n_keeps_trailing_subset() {
        let recs = parse(SAMPLE).unwrap();
        let jobs = to_base_jobs(&recs, 128, Some(1));
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].runtime, 60.0);
        assert_eq!(jobs[0].submit, 0.0, "rebased to the subset start");
    }

    #[test]
    fn round_trip() {
        let recs = parse(SAMPLE).unwrap();
        let text = write(&recs);
        let again = parse(&text).unwrap();
        assert_eq!(recs, again);
    }

    #[test]
    fn missing_estimate_falls_back_to_runtime() {
        let line = "1 0 0 100 4 -1 -1 4 -1 -1 1 1 1 1 1 1 -1 -1\n";
        let jobs = to_base_jobs(&parse(line).unwrap(), 128, None);
        assert_eq!(jobs[0].trace_estimate, 100.0);
    }
}
