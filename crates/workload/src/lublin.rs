//! A Lublin–Feitelson-style workload model.
//!
//! Lublin & Feitelson (JPDC 2003) is the canonical parametric model of
//! rigid supercomputer jobs. This module implements its *structure* —
//! parameters are freely configurable and the defaults are adapted to match
//! the SDSC SP2 summary statistics rather than copied verbatim:
//!
//! - **width**: a job is serial with probability `p_serial`; parallel
//!   widths draw a uniform log₂ size in `[1, log₂(nodes)]` and round to a
//!   power of two with probability `p_pow2` (real traces strongly favour
//!   powers of two).
//! - **runtime**: a hyper-gamma — a two-component [`Gamma`] mixture of
//!   "short" and "long" jobs — whose long-component probability grows with
//!   the job's width (wide jobs run longer), the model's signature
//!   correlation.
//! - **arrivals**: gamma-distributed inter-arrival gaps (burstier than
//!   Poisson); compose with [`crate::diurnal`] for the daily cycle.
//! - **estimates**: delegated to the same over/under-estimation machinery
//!   as the SDSC model.

use crate::job::{BaseJob, JobId};
use ccs_des::dist::{Distribution, Exponential, Gamma, Mixture, Uniform};
use ccs_des::SimRng;

/// Configuration of the Lublin-style model.
#[derive(Clone, Copy, Debug)]
pub struct LublinModel {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Cluster size (bounds the widths).
    pub nodes: u32,
    /// Probability of a serial (1-processor) job.
    pub p_serial: f64,
    /// Probability a parallel width rounds to a power of two.
    pub p_pow2: f64,
    /// Short-runtime gamma component.
    pub short: (f64, f64),
    /// Long-runtime gamma component.
    pub long: (f64, f64),
    /// Long-component probability for a serial job; grows linearly with
    /// log₂(width) up to `p_long_wide` at full machine width.
    pub p_long_serial: f64,
    /// Long-component probability at the widest jobs.
    pub p_long_wide: f64,
    /// Gamma shape of the inter-arrival gaps (1 = Poisson; < 1 = bursty).
    pub arrival_shape: f64,
    /// Mean inter-arrival gap (seconds).
    pub mean_interarrival: f64,
    /// Maximum runtime (seconds).
    pub max_runtime: f64,
    /// Fraction of under-estimating users.
    pub underestimate_fraction: f64,
    /// Mean of the over-estimation surplus.
    pub overestimate_surplus_mean: f64,
}

impl Default for LublinModel {
    fn default() -> Self {
        LublinModel {
            jobs: 5000,
            nodes: 128,
            p_serial: 0.24,
            p_pow2: 0.75,
            // Short jobs: mean ~ 12 × 90 = 1080 s; long: ~ 6 × 4000 = 24 000 s.
            short: (1.5, 720.0),
            long: (6.0, 4000.0),
            p_long_serial: 0.25,
            p_long_wide: 0.65,
            arrival_shape: 0.6, // bursty
            mean_interarrival: 1969.0,
            max_runtime: 64_800.0,
            underestimate_fraction: 0.08,
            overestimate_surplus_mean: 3.0,
        }
    }
}

impl LublinModel {
    /// Generates the workload; deterministic in `(model, seed)`.
    pub fn generate(&self, seed: u64) -> Vec<BaseJob> {
        assert!(
            self.nodes.is_power_of_two(),
            "width model assumes a power-of-two machine"
        );
        let master = SimRng::seed_from(seed ^ 0x1B1B_1B1B);
        let log2_max = (self.nodes as f64).log2();
        // Gamma inter-arrivals with the configured mean: scale = mean/shape.
        let ia = Gamma::new(
            self.arrival_shape,
            self.mean_interarrival / self.arrival_shape,
        );
        let under = Uniform::new(0.1, 0.9);
        let surplus = Exponential::new(self.overestimate_surplus_mean);

        let mut submit = 0.0;
        let mut out = Vec::with_capacity(self.jobs);
        for k in 0..self.jobs {
            let mut rng = master.fork(k as u64);
            submit += ia.sample(&mut rng);

            // Width.
            let procs = if rng.bernoulli(self.p_serial) {
                1
            } else {
                let l = rng.uniform(0.0, log2_max);
                let exact = 2f64.powf(l);
                let w = if rng.bernoulli(self.p_pow2) {
                    2f64.powf(l.round())
                } else {
                    exact.round().max(2.0)
                };
                (w as u32).clamp(2, self.nodes)
            };

            // Runtime: hyper-gamma with width-dependent long probability.
            let frac = (procs as f64).log2() / log2_max;
            let p_long = self.p_long_serial + (self.p_long_wide - self.p_long_serial) * frac;
            let runtime_dist = Mixture::new(
                1.0 - p_long,
                Gamma::new(self.short.0, self.short.1),
                Gamma::new(self.long.0, self.long.1),
            );
            let runtime = runtime_dist.sample(&mut rng).clamp(30.0, self.max_runtime);

            // Estimates: same methodology as the SDSC model.
            let trace_estimate = if rng.bernoulli(self.underestimate_fraction) {
                (runtime * under.sample(&mut rng)).max(1.0)
            } else {
                (runtime * (1.0 + surplus.sample(&mut rng))).min(self.max_runtime * 4.0)
            };

            out.push(BaseJob {
                id: k as JobId,
                submit,
                runtime,
                trace_estimate,
                procs,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Vec<BaseJob> {
        LublinModel::default().generate(42)
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            LublinModel::default().generate(1),
            LublinModel::default().generate(1)
        );
        assert_ne!(
            LublinModel::default().generate(1),
            LublinModel::default().generate(2)
        );
    }

    #[test]
    fn serial_fraction_matches() {
        let jobs = workload();
        let serial = jobs.iter().filter(|j| j.procs == 1).count() as f64 / jobs.len() as f64;
        assert!((serial - 0.24).abs() < 0.03, "serial fraction {serial}");
    }

    #[test]
    fn widths_favour_powers_of_two() {
        let jobs = workload();
        let parallel: Vec<&BaseJob> = jobs.iter().filter(|j| j.procs > 1).collect();
        let pow2 = parallel
            .iter()
            .filter(|j| j.procs.is_power_of_two())
            .count() as f64
            / parallel.len() as f64;
        assert!(pow2 > 0.7, "power-of-two fraction {pow2}");
        assert!(jobs.iter().all(|j| j.procs >= 1 && j.procs <= 128));
    }

    #[test]
    fn wide_jobs_run_longer() {
        // The hyper-gamma's width correlation: mean runtime of wide jobs
        // exceeds that of serial jobs.
        let jobs = workload();
        let mean = |f: &dyn Fn(&&BaseJob) -> bool| {
            let v: Vec<f64> = jobs.iter().filter(f).map(|j| j.runtime).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let serial = mean(&|j| j.procs == 1);
        let wide = mean(&|j| j.procs >= 32);
        assert!(
            wide > serial * 1.3,
            "wide {wide:.0}s vs serial {serial:.0}s"
        );
    }

    #[test]
    fn bursty_arrivals_have_high_cv() {
        let jobs = workload();
        let gaps: Vec<f64> = jobs.windows(2).map(|w| w[1].submit - w[0].submit).collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        assert!((mean / 1969.0 - 1.0).abs() < 0.1, "mean gap {mean}");
        assert!(
            cv > 1.1,
            "gamma(0.6) arrivals are burstier than Poisson: cv {cv}"
        );
    }

    #[test]
    fn feeds_the_standard_pipeline() {
        use crate::scenario::{apply_scenario, ScenarioTransform};
        let base = LublinModel {
            jobs: 100,
            ..Default::default()
        }
        .generate(3);
        let jobs = apply_scenario(&base, &ScenarioTransform::default(), 3);
        assert_eq!(jobs.len(), 100);
        assert!(jobs.iter().all(|j| j.deadline > 0.0 && j.budget > 0.0));
    }

    #[test]
    #[should_panic]
    fn non_pow2_machine_rejected() {
        let m = LublinModel {
            nodes: 100,
            ..Default::default()
        };
        let _ = m.generate(1);
    }
}
