//! Diurnal (daily-cycle) arrival modulation.
//!
//! Real supercomputer traces — SDSC SP2 included — show strong daily
//! cycles: submissions peak in working hours and ebb at night (Lublin &
//! Feitelson 2003). The base synthetic model uses a homogeneous Poisson
//! process; this module wraps any base workload with a non-homogeneous
//! arrival process via *thinning*, preserving each job's runtime, width,
//! and estimate while redistributing the arrival instants.
//!
//! The modulation is a 24-hour rate profile; the canonical
//! [`DiurnalProfile::office_hours`] profile peaks at 14:00 and bottoms out
//! at 04:00 with a configurable peak-to-trough ratio.

use crate::job::BaseJob;
use ccs_des::SimRng;

/// Seconds per day.
const DAY: f64 = 86_400.0;

/// A 24-hour arrival-rate profile (relative rates, one per hour).
#[derive(Clone, Debug)]
pub struct DiurnalProfile {
    /// Relative rate for each hour of the day (all > 0). Normalized
    /// internally — only ratios matter.
    pub hourly_rate: [f64; 24],
}

impl DiurnalProfile {
    /// Sinusoidal profile peaking at 14:00, minimum at 02:00, with the given
    /// peak-to-trough ratio (≥ 1).
    pub fn office_hours(peak_to_trough: f64) -> Self {
        assert!(peak_to_trough >= 1.0);
        let mut hourly_rate = [0.0; 24];
        let amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0);
        for (h, r) in hourly_rate.iter_mut().enumerate() {
            // cos is 1 at the 14:00 peak.
            let phase = (h as f64 - 14.0) / 24.0 * std::f64::consts::TAU;
            *r = 1.0 + amplitude * phase.cos();
        }
        DiurnalProfile { hourly_rate }
    }

    /// A flat profile (no modulation).
    pub fn flat() -> Self {
        DiurnalProfile {
            hourly_rate: [1.0; 24],
        }
    }

    /// Relative rate at an absolute time (seconds since simulation start,
    /// assumed to begin at midnight).
    pub fn rate_at(&self, t: f64) -> f64 {
        let seconds_of_day = t.rem_euclid(DAY);
        let hour = (seconds_of_day / 3600.0) as usize % 24;
        self.hourly_rate[hour]
    }

    /// Maximum relative rate (the thinning envelope).
    pub fn max_rate(&self) -> f64 {
        self.hourly_rate.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean relative rate.
    pub fn mean_rate(&self) -> f64 {
        self.hourly_rate.iter().sum::<f64>() / 24.0
    }
}

/// Redistributes the arrival times of `base` as a non-homogeneous Poisson
/// process with the given daily profile, keeping the workload's overall
/// mean inter-arrival time. Job bodies (runtime, width, estimate) are
/// untouched and stay in their original order. Deterministic in `seed`.
pub fn apply_diurnal(base: &[BaseJob], profile: &DiurnalProfile, seed: u64) -> Vec<BaseJob> {
    if base.len() < 2 {
        return base.to_vec();
    }
    let span = base.last().unwrap().submit - base[0].submit;
    let mean_gap = span / (base.len() - 1) as f64;
    // Homogeneous envelope rate, scaled so the thinned process keeps the
    // original mean rate.
    let envelope_rate = profile.max_rate() / profile.mean_rate() / mean_gap;

    let mut rng = SimRng::seed_from(seed ^ 0xD1FF_0000_0000_0001);
    let mut out = Vec::with_capacity(base.len());
    let mut t = 0.0;
    for b in base {
        // Thinned Poisson: propose from the envelope, accept with
        // probability rate(t)/max_rate.
        loop {
            let u = (1.0 - rng.uniform01()).max(f64::MIN_POSITIVE);
            t += -u.ln() / envelope_rate;
            if rng.uniform01() < profile.rate_at(t) / profile.max_rate() {
                break;
            }
        }
        let mut j = *b;
        j.submit = t;
        out.push(j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SdscSp2Model;

    #[test]
    fn flat_profile_keeps_mean_rate() {
        let base = SdscSp2Model {
            jobs: 3000,
            ..Default::default()
        }
        .generate(1);
        let out = apply_diurnal(&base, &DiurnalProfile::flat(), 1);
        assert_eq!(out.len(), base.len());
        let span_base = base.last().unwrap().submit - base[0].submit;
        let span_out = out.last().unwrap().submit - out[0].submit;
        assert!(
            (span_out / span_base - 1.0).abs() < 0.1,
            "spans comparable: {span_base} vs {span_out}"
        );
    }

    #[test]
    fn office_hours_concentrates_daytime_arrivals() {
        let base = SdscSp2Model {
            jobs: 5000,
            ..Default::default()
        }
        .generate(2);
        let profile = DiurnalProfile::office_hours(8.0);
        let out = apply_diurnal(&base, &profile, 2);
        let hour = |t: f64| ((t % DAY) / 3600.0) as u32;
        let day = out
            .iter()
            .filter(|j| (9..18).contains(&hour(j.submit)))
            .count();
        let night = out.iter().filter(|j| hour(j.submit) < 6).count();
        assert!(
            day > night * 2,
            "daytime arrivals should dominate: {day} vs {night}"
        );
    }

    #[test]
    fn job_bodies_preserved() {
        let base = SdscSp2Model {
            jobs: 200,
            ..Default::default()
        }
        .generate(3);
        let out = apply_diurnal(&base, &DiurnalProfile::office_hours(4.0), 3);
        for (a, b) in base.iter().zip(&out) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.procs, b.procs);
            assert_eq!(a.trace_estimate, b.trace_estimate);
        }
    }

    #[test]
    fn arrivals_strictly_increasing() {
        let base = SdscSp2Model {
            jobs: 500,
            ..Default::default()
        }
        .generate(4);
        let out = apply_diurnal(&base, &DiurnalProfile::office_hours(6.0), 4);
        for w in out.windows(2) {
            assert!(w[1].submit > w[0].submit);
        }
    }

    #[test]
    fn deterministic() {
        let base = SdscSp2Model {
            jobs: 100,
            ..Default::default()
        }
        .generate(5);
        let p = DiurnalProfile::office_hours(4.0);
        assert_eq!(apply_diurnal(&base, &p, 9), apply_diurnal(&base, &p, 9));
        assert_ne!(
            apply_diurnal(&base, &p, 9),
            apply_diurnal(&base, &p, 10),
            "seed must matter"
        );
    }

    #[test]
    fn profile_rate_lookup() {
        let p = DiurnalProfile::office_hours(8.0);
        assert!(p.rate_at(14.5 * 3600.0) > p.rate_at(2.5 * 3600.0));
        assert!(
            p.rate_at(DAY + 14.5 * 3600.0) > p.rate_at(DAY + 2.5 * 3600.0),
            "wraps daily"
        );
        let flat = DiurnalProfile::flat();
        assert_eq!(flat.max_rate(), 1.0);
        assert_eq!(flat.mean_rate(), 1.0);
    }

    #[test]
    fn tiny_inputs_pass_through() {
        let base = SdscSp2Model {
            jobs: 1,
            ..Default::default()
        }
        .generate(6);
        let out = apply_diurnal(&base, &DiurnalProfile::flat(), 6);
        assert_eq!(out, base);
    }
}
