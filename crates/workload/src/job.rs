//! Job records.
//!
//! Two stages of job exist in the pipeline:
//!
//! 1. [`BaseJob`] — what a trace (real or synthetic) provides: arrival,
//!    actual runtime, the user's runtime estimate, and processor count.
//! 2. [`Job`] — a base job after *scenario transforms* (arrival scaling,
//!    estimate-inaccuracy interpolation) and *QoS annotation* (urgency
//!    class, deadline, budget, penalty rate). This is what policies see.

use serde::{Deserialize, Serialize};

/// Identifier of a job within one workload (dense, 0-based).
pub type JobId = u32;

/// Urgency class of a job (paper Section 5.3).
///
/// High-urgency jobs have tight deadlines but large budgets and penalty
/// rates; low-urgency jobs are the opposite.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum Urgency {
    /// Tight deadline, high budget, high penalty rate.
    High,
    /// Relaxed deadline, low budget, low penalty rate.
    Low,
}

/// A job as it appears in a trace, before QoS annotation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaseJob {
    /// Dense 0-based identifier.
    pub id: JobId,
    /// Submission time in seconds since trace start.
    pub submit: f64,
    /// Actual runtime in seconds (> 0).
    pub runtime: f64,
    /// The user's runtime estimate from the trace, in seconds (> 0). In real
    /// traces ~92 % of these over-estimate and ~8 % under-estimate.
    pub trace_estimate: f64,
    /// Number of processors required (1..=nodes).
    pub procs: u32,
}

impl BaseJob {
    /// Processor-seconds of real work this job performs.
    pub fn work(&self) -> f64 {
        self.runtime * self.procs as f64
    }
}

/// A fully annotated job, ready for submission to the computing service.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Dense 0-based identifier.
    pub id: JobId,
    /// Submission time in seconds since simulation start (`tsu_i`).
    pub submit: f64,
    /// Actual runtime in seconds; unknown to the scheduler.
    pub runtime: f64,
    /// Runtime estimate the user supplies (`tr_i` in the paper's pricing
    /// formulas — schedulers and pricing may only consult this).
    pub estimate: f64,
    /// Number of processors required.
    pub procs: u32,
    /// Urgency class.
    pub urgency: Urgency,
    /// Deadline `d_i`, in seconds *relative to submission*.
    pub deadline: f64,
    /// Budget `b_i` in dollars — the most the user will pay.
    pub budget: f64,
    /// Penalty rate `pr_i` in dollars per second of delay past the deadline
    /// (bid-based model only).
    pub penalty_rate: f64,
}

impl Job {
    /// Absolute deadline: `submit + deadline`.
    #[inline]
    pub fn absolute_deadline(&self) -> f64 {
        self.submit + self.deadline
    }

    /// Processor-seconds of real work.
    #[inline]
    pub fn work(&self) -> f64 {
        self.runtime * self.procs as f64
    }

    /// Processor-seconds of *estimated* work (what admission control sees).
    #[inline]
    pub fn estimated_work(&self) -> f64 {
        self.estimate * self.procs as f64
    }

    /// True if the user's estimate is below the actual runtime.
    #[inline]
    pub fn is_underestimated(&self) -> bool {
        self.estimate < self.runtime
    }

    /// Whether a completion at absolute time `finish` fulfils the SLA
    /// (paper Eq. 10: delay `dy_i = (tf_i − tsu_i) − d_i`; fulfilled iff the
    /// delay is non-positive).
    #[inline]
    pub fn fulfilled_by(&self, finish: f64) -> bool {
        finish - self.submit <= self.deadline + 1e-9
    }

    /// Delay past the deadline for a completion at `finish` (0 if on time).
    #[inline]
    pub fn delay_at(&self, finish: f64) -> f64 {
        ((finish - self.submit) - self.deadline).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: 0,
            submit: 100.0,
            runtime: 50.0,
            estimate: 60.0,
            procs: 4,
            urgency: Urgency::Low,
            deadline: 200.0,
            budget: 500.0,
            penalty_rate: 1.0,
        }
    }

    #[test]
    fn absolute_deadline_is_submit_plus_relative() {
        assert_eq!(job().absolute_deadline(), 300.0);
    }

    #[test]
    fn work_accounts_for_width() {
        assert_eq!(job().work(), 200.0);
        assert_eq!(job().estimated_work(), 240.0);
    }

    #[test]
    fn fulfilment_boundary() {
        let j = job();
        assert!(j.fulfilled_by(300.0), "exactly on deadline is fulfilled");
        assert!(j.fulfilled_by(299.9));
        assert!(!j.fulfilled_by(300.5));
    }

    #[test]
    fn delay_saturates_at_zero() {
        let j = job();
        assert_eq!(j.delay_at(250.0), 0.0);
        assert_eq!(j.delay_at(320.0), 20.0);
    }

    #[test]
    fn underestimate_detection() {
        let mut j = job();
        assert!(!j.is_underestimated());
        j.estimate = 40.0;
        assert!(j.is_underestimated());
    }
}
