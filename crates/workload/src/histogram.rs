//! Log-binned histograms of workload attributes.
//!
//! Trace characterization (runtime, width, inter-arrival, estimate-accuracy
//! distributions) is how workload models are validated against real traces;
//! these helpers render the synthetic model's distributions for inspection
//! and tests.

use crate::job::BaseJob;
use std::fmt::Write as _;

/// A histogram over logarithmically spaced bins.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// Lower edge of the first bin.
    pub min: f64,
    /// Multiplicative width of each bin.
    pub factor: f64,
    /// Counts per bin; the last bin absorbs everything above the range.
    pub counts: Vec<u64>,
    /// Observations below `min`.
    pub underflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` bins starting at `min`, each bin
    /// `factor×` wider than the previous.
    pub fn new(min: f64, factor: f64, bins: usize) -> Self {
        assert!(min > 0.0 && factor > 1.0 && bins > 0);
        LogHistogram {
            min,
            factor,
            counts: vec![0; bins],
            underflow: 0,
            total: 0,
        }
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.min {
            self.underflow += 1;
            return;
        }
        let bin = ((x / self.min).ln() / self.factor.ln()) as usize;
        let bin = bin.min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Builds a histogram from samples.
    pub fn from_samples(
        samples: impl IntoIterator<Item = f64>,
        min: f64,
        factor: f64,
        bins: usize,
    ) -> Self {
        let mut h = Self::new(min, factor, bins);
        for x in samples {
            h.add(x);
        }
        h
    }

    /// Total observations (including underflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The lower edge of bin `i`.
    pub fn edge(&self, i: usize) -> f64 {
        self.min * self.factor.powi(i as i32)
    }

    /// The index of the most populated bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Renders an ASCII bar chart, one row per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut s = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bars = (c as f64 / max as f64 * width as f64).round() as usize;
            let _ = writeln!(
                s,
                "[{:>10.0}, {:>10.0}) {:>7} |{}",
                self.edge(i),
                self.edge(i + 1),
                c,
                "#".repeat(bars)
            );
        }
        s
    }
}

/// The standard characterization of a base workload: runtime, width, and
/// inter-arrival histograms plus the estimate-accuracy ratio distribution.
pub struct TraceHistograms {
    /// Runtime distribution (seconds; log bins from 30 s).
    pub runtime: LogHistogram,
    /// Width distribution (processors; log bins from 1, factor 2 = one bin
    /// per power of two).
    pub width: LogHistogram,
    /// Inter-arrival gaps (seconds).
    pub interarrival: LogHistogram,
    /// Estimate/runtime ratio (accuracy; 1.0 = exact).
    pub accuracy: LogHistogram,
}

impl TraceHistograms {
    /// Characterizes a base workload.
    pub fn of(jobs: &[BaseJob]) -> Self {
        let runtime = LogHistogram::from_samples(jobs.iter().map(|j| j.runtime), 30.0, 2.0, 12);
        let width = LogHistogram::from_samples(jobs.iter().map(|j| j.procs as f64), 1.0, 2.0, 8);
        let gaps = jobs
            .windows(2)
            .map(|w| (w[1].submit - w[0].submit).max(1.0));
        let interarrival = LogHistogram::from_samples(gaps, 1.0, 4.0, 10);
        let accuracy = LogHistogram::from_samples(
            jobs.iter().map(|j| j.trace_estimate / j.runtime.max(1e-9)),
            0.125,
            2.0,
            9,
        );
        TraceHistograms {
            runtime,
            width,
            interarrival,
            accuracy,
        }
    }

    /// Renders all four histograms.
    pub fn render(&self, width: usize) -> String {
        format!(
            "runtime (s):\n{}\nwidth (procs):\n{}\ninter-arrival (s):\n{}\nestimate/runtime ratio:\n{}",
            self.runtime.render(width),
            self.width.render(width),
            self.interarrival.render(width),
            self.accuracy.render(width)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SdscSp2Model;

    #[test]
    fn bin_edges_are_geometric() {
        let h = LogHistogram::new(10.0, 2.0, 5);
        assert_eq!(h.edge(0), 10.0);
        assert_eq!(h.edge(1), 20.0);
        assert_eq!(h.edge(4), 160.0);
    }

    #[test]
    fn counts_land_in_the_right_bins() {
        let mut h = LogHistogram::new(10.0, 10.0, 3);
        for &x in &[5.0, 15.0, 99.0, 100.0, 999.0, 5000.0, 1e9] {
            h.add(x);
        }
        assert_eq!(h.underflow, 1, "5.0 under the range");
        assert_eq!(h.counts[0], 2, "15 and 99 in [10, 100)");
        assert_eq!(h.counts[1], 2, "100 and 999 in [100, 1000)");
        assert_eq!(h.counts[2], 2, "5000 and the overflow absorbed at the top");
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn trace_histograms_characterize_the_synthetic_model() {
        let jobs = SdscSp2Model::default().generate(42);
        let h = TraceHistograms::of(&jobs);
        assert_eq!(h.runtime.total(), 5000);
        assert_eq!(h.width.total(), 5000);
        assert_eq!(h.interarrival.total(), 4999);
        // Widths are powers of two: the factor-2 bins carry everything and
        // the single-processor bin is well populated.
        assert!(h.width.counts[0] > 500);
        // Estimates are mostly over-estimates: the accuracy mode is >= 1.
        assert!(h.accuracy.edge(h.accuracy.mode_bin()) >= 0.9);
        let text = h.render(40);
        assert!(text.contains("runtime (s):"));
        assert!(text.lines().count() > 30);
    }

    #[test]
    fn render_scales_bars_to_width() {
        let mut h = LogHistogram::new(1.0, 2.0, 3);
        for _ in 0..100 {
            h.add(1.5);
        }
        h.add(3.0);
        let text = h.render(20);
        assert!(text.lines().next().unwrap().ends_with(&"#".repeat(20)));
    }
}
