//! Workload summary statistics.

use crate::job::Job;
use serde::{Deserialize, Serialize};

/// Aggregate description of a workload, as printed by the experiment
/// harness and used by tests to validate the synthetic SDSC SP2 model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean inter-arrival time (s).
    pub mean_interarrival: f64,
    /// Mean runtime (s).
    pub mean_runtime: f64,
    /// Mean processor count.
    pub mean_procs: f64,
    /// Fraction of jobs whose estimate under-estimates the runtime.
    pub underestimate_fraction: f64,
    /// Offered load: total work / (nodes × span).
    pub offered_load: f64,
    /// Fraction of jobs in the high-urgency class.
    pub high_urgency_fraction: f64,
    /// Mean deadline/runtime factor.
    pub mean_deadline_factor: f64,
}

impl WorkloadSummary {
    /// Computes the summary of `jobs` against a cluster of `nodes` nodes.
    pub fn compute(jobs: &[Job], nodes: u32) -> Self {
        if jobs.is_empty() {
            return WorkloadSummary {
                jobs: 0,
                mean_interarrival: 0.0,
                mean_runtime: 0.0,
                mean_procs: 0.0,
                underestimate_fraction: 0.0,
                offered_load: 0.0,
                high_urgency_fraction: 0.0,
                mean_deadline_factor: 0.0,
            };
        }
        let n = jobs.len() as f64;
        let span = (jobs.last().unwrap().submit - jobs[0].submit).max(1.0);
        let total_work: f64 = jobs.iter().map(|j| j.work()).sum();
        WorkloadSummary {
            jobs: jobs.len(),
            mean_interarrival: span / (n - 1.0).max(1.0),
            mean_runtime: jobs.iter().map(|j| j.runtime).sum::<f64>() / n,
            mean_procs: jobs.iter().map(|j| j.procs as f64).sum::<f64>() / n,
            underestimate_fraction: jobs.iter().filter(|j| j.is_underestimated()).count() as f64
                / n,
            offered_load: total_work / (nodes as f64 * span),
            high_urgency_fraction: jobs
                .iter()
                .filter(|j| j.urgency == crate::job::Urgency::High)
                .count() as f64
                / n,
            mean_deadline_factor: jobs.iter().map(|j| j.deadline / j.runtime).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for WorkloadSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "jobs                 : {}", self.jobs)?;
        writeln!(f, "mean inter-arrival   : {:.1} s", self.mean_interarrival)?;
        writeln!(f, "mean runtime         : {:.1} s", self.mean_runtime)?;
        writeln!(f, "mean processors      : {:.2}", self.mean_procs)?;
        writeln!(
            f,
            "under-estimates      : {:.1} %",
            self.underestimate_fraction * 100.0
        )?;
        writeln!(f, "offered load         : {:.2}", self.offered_load)?;
        writeln!(
            f,
            "high-urgency jobs    : {:.1} %",
            self.high_urgency_fraction * 100.0
        )?;
        write!(f, "mean deadline factor : {:.2}", self.mean_deadline_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{apply_scenario, ScenarioTransform};
    use crate::synth::SdscSp2Model;

    #[test]
    fn empty_workload_summary_is_zero() {
        let s = WorkloadSummary::compute(&[], 128);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.offered_load, 0.0);
    }

    #[test]
    fn summary_of_default_workload_matches_paper_stats() {
        let base = SdscSp2Model::default().generate(42);
        let jobs = apply_scenario(
            &base,
            &ScenarioTransform {
                arrival_delay_factor: 1.0,
                inaccuracy_pct: 100.0, // use the trace's own estimates
                ..Default::default()
            },
            42,
        );
        let s = WorkloadSummary::compute(&jobs, 128);
        assert_eq!(s.jobs, 5000);
        assert!((s.mean_interarrival / 1969.0 - 1.0).abs() < 0.1);
        assert!((s.mean_runtime / 8671.0 - 1.0).abs() < 0.15);
        assert!((s.mean_procs - 17.0).abs() < 2.5);
        assert!((s.underestimate_fraction - 0.08).abs() < 0.02);
        // Offered load of the un-compressed subset is ~0.6 of the cluster;
        // the default experiment compresses arrivals 10x (see DESIGN.md).
        assert!(
            s.offered_load > 0.4 && s.offered_load < 0.9,
            "load {}",
            s.offered_load
        );
    }

    #[test]
    fn display_renders() {
        let base = SdscSp2Model::small().generate(1);
        let jobs = apply_scenario(&base, &ScenarioTransform::default(), 1);
        let text = format!("{}", WorkloadSummary::compute(&jobs, 128));
        assert!(text.contains("offered load"));
    }
}
