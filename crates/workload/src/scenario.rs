//! Scenario transforms: turning a base trace into one experiment's workload.
//!
//! An experiment point in the paper (one cell of Table VI) is defined by a
//! QoS configuration plus two trace-level transforms:
//!
//! - the **arrival-delay factor** scales every inter-arrival gap (a factor
//!   below 1 compresses the trace, i.e. raises the load), and
//! - the **estimate-inaccuracy percentage** interpolates each job's runtime
//!   estimate between perfectly accurate (0 %) and the trace's own, mostly
//!   over-estimated value (100 %).
//!
//! QoS factor draws for job *k* come from a fork of the scenario seed
//! labelled *k*, so sweeping the arrival-delay factor (or inaccuracy) leaves
//! every job's deadline/budget/penalty untouched — exactly the
//! "only the workload changes while the rest of the experiment settings
//! remain the same" semantics of paper Section 4.1.

use crate::job::{BaseJob, Job};
use crate::qos::QosConfig;
use ccs_des::SimRng;
use serde::{Deserialize, Serialize};

/// A fully specified experiment-point transform.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScenarioTransform {
    /// QoS annotation settings.
    pub qos: QosConfig,
    /// Multiplier on trace inter-arrival times (paper: 0.02–1.00; lower =
    /// heavier load).
    pub arrival_delay_factor: f64,
    /// Runtime-estimate inaccuracy in percent (0 = accurate, 100 = trace).
    pub inaccuracy_pct: f64,
}

impl Default for ScenarioTransform {
    fn default() -> Self {
        ScenarioTransform {
            qos: QosConfig::default(),
            arrival_delay_factor: 0.25,
            inaccuracy_pct: 0.0,
        }
    }
}

/// Applies a scenario transform to a base trace, producing the job stream
/// one simulation run consumes. Deterministic in `(base, transform, seed)`.
pub fn apply_scenario(base: &[BaseJob], t: &ScenarioTransform, seed: u64) -> Vec<Job> {
    let master = SimRng::seed_from(seed);
    let mean_runtime = if base.is_empty() {
        0.0
    } else {
        base.iter().map(|j| j.runtime).sum::<f64>() / base.len() as f64
    };

    let mut jobs = Vec::with_capacity(base.len());
    let mut prev_orig = 0.0;
    let mut prev_new = 0.0;
    for b in base {
        let gap = (b.submit - prev_orig).max(0.0);
        let submit = prev_new + gap * t.arrival_delay_factor;
        prev_orig = b.submit;
        prev_new = submit;

        let mut rng = master.fork(b.id as u64);
        let mut job = crate::qos::annotate_job(b, &t.qos, mean_runtime, t.inaccuracy_pct, &mut rng);
        job.submit = submit;
        jobs.push(job);
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SdscSp2Model;

    fn base() -> Vec<BaseJob> {
        SdscSp2Model::small().generate(5)
    }

    #[test]
    fn arrival_factor_scales_gaps() {
        let b = base();
        let full = apply_scenario(
            &b,
            &ScenarioTransform {
                arrival_delay_factor: 1.0,
                ..Default::default()
            },
            1,
        );
        let tenth = apply_scenario(
            &b,
            &ScenarioTransform {
                arrival_delay_factor: 0.1,
                ..Default::default()
            },
            1,
        );
        let span_full = full.last().unwrap().submit - full[0].submit;
        let span_tenth = tenth.last().unwrap().submit - tenth[0].submit;
        assert!((span_tenth / span_full - 0.1).abs() < 1e-9);
    }

    #[test]
    fn qos_invariant_under_arrival_sweep() {
        let b = base();
        let a = apply_scenario(
            &b,
            &ScenarioTransform {
                arrival_delay_factor: 1.0,
                ..Default::default()
            },
            1,
        );
        let c = apply_scenario(
            &b,
            &ScenarioTransform {
                arrival_delay_factor: 0.02,
                ..Default::default()
            },
            1,
        );
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.deadline, y.deadline);
            assert_eq!(x.budget, y.budget);
            assert_eq!(x.penalty_rate, y.penalty_rate);
            assert_eq!(x.urgency, y.urgency);
        }
    }

    #[test]
    fn qos_invariant_under_inaccuracy_sweep() {
        let b = base();
        let a = apply_scenario(
            &b,
            &ScenarioTransform {
                inaccuracy_pct: 0.0,
                ..Default::default()
            },
            1,
        );
        let c = apply_scenario(
            &b,
            &ScenarioTransform {
                inaccuracy_pct: 100.0,
                ..Default::default()
            },
            1,
        );
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.deadline, y.deadline);
            assert_eq!(x.budget, y.budget);
            assert_eq!(x.submit, y.submit);
            assert_eq!(y.estimate, y.runtime + (y.estimate - y.runtime)); // tautology guard
        }
        // At 0 % every estimate equals the runtime; at 100 % most differ.
        assert!(a.iter().all(|j| j.estimate == j.runtime.max(1.0)));
        let diff = c.iter().filter(|j| j.estimate != j.runtime).count();
        assert!(diff > c.len() / 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let b = base();
        let t = ScenarioTransform::default();
        assert_eq!(apply_scenario(&b, &t, 9), apply_scenario(&b, &t, 9));
        assert_ne!(apply_scenario(&b, &t, 9), apply_scenario(&b, &t, 10));
    }

    #[test]
    fn preserves_job_count_and_ids() {
        let b = base();
        let jobs = apply_scenario(&b, &ScenarioTransform::default(), 2);
        assert_eq!(jobs.len(), b.len());
        for (j, bj) in jobs.iter().zip(&b) {
            assert_eq!(j.id, bj.id);
            assert_eq!(j.runtime, bj.runtime);
            assert_eq!(j.procs, bj.procs);
        }
    }

    #[test]
    fn submits_remain_monotone() {
        let jobs = apply_scenario(
            &base(),
            &ScenarioTransform {
                arrival_delay_factor: 0.02,
                ..Default::default()
            },
            3,
        );
        for w in jobs.windows(2) {
            assert!(w[1].submit >= w[0].submit);
        }
    }
}
