//! # ccs-workload — parallel workload modelling
//!
//! Provides everything the simulation needs to know about *jobs*:
//!
//! - [`job`] — the job record used throughout the workspace (resource
//!   requirements + QoS requirements: deadline, budget, penalty rate).
//! - [`swf`] — a parser/writer for the Standard Workload Format used by the
//!   Parallel Workloads Archive, so real traces (e.g. SDSC SP2) can be
//!   dropped in.
//! - [`synth`] — a seeded synthetic generator reproducing the summary
//!   statistics of the last-5000-job SDSC SP2 subset the paper simulates
//!   (the trace itself is not redistributable; see DESIGN.md §5.1).
//! - [`qos`] — the paper's QoS annotation methodology: two urgency classes,
//!   normally distributed deadline/budget/penalty factors, high:low ratios,
//!   and the bias transform (paper Section 5.3).
//! - [`scenario`] — the experiment-facing transforms: arrival-delay factor
//!   and runtime-estimate inaccuracy interpolation.
//! - [`stats`] — workload summary statistics (offered load, estimate
//!   accuracy mix, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diurnal;
pub mod histogram;
pub mod job;
pub mod lublin;
pub mod qos;
pub mod scenario;
pub mod stats;
pub mod swf;
pub mod synth;

pub use diurnal::{apply_diurnal, DiurnalProfile};
pub use histogram::{LogHistogram, TraceHistograms};
pub use job::{BaseJob, Job, JobId, Urgency};
pub use lublin::LublinModel;
pub use qos::{FactorSpec, QosConfig};
pub use scenario::{apply_scenario, ScenarioTransform};
pub use stats::WorkloadSummary;
pub use synth::{EstimateModel, SdscSp2Model, MODAL_ESTIMATES};
