//! Synthetic SDSC SP2-like workload generator.
//!
//! The paper drives its simulation with the last 5000 jobs of the SDSC SP2
//! trace (Parallel Workloads Archive, v2.2). The trace itself cannot be
//! bundled, so this module generates a *distribution-matched* stand-in with
//! the summary statistics the paper reports for the subset:
//!
//! | statistic                    | paper   | this model (seeded default) |
//! |------------------------------|---------|------------------------------|
//! | jobs                         | 5000    | 5000                         |
//! | nodes                        | 128     | 128                          |
//! | mean inter-arrival           | 1969 s  | ≈ 1969 s (exponential)       |
//! | mean runtime                 | 8671 s  | ≈ 8671 s (log-normal, capped)|
//! | mean processors              | 17      | ≈ 17 (power-of-two weighted) |
//! | runtime estimates under/over | 8 %/92 %| 8 %/92 %                     |
//!
//! All sampling is per-job forked from the model seed, so job `k`'s
//! attributes do not depend on how many jobs precede it.

use crate::job::{BaseJob, JobId};
use ccs_des::dist::{Distribution, Exponential, LogNormal, Uniform};
use ccs_des::SimRng;
use serde::{Deserialize, Serialize};

/// How user runtime estimates are synthesized.
///
/// [`EstimateModel::Multiplicative`] draws a continuous padding factor —
/// simple and smooth. [`EstimateModel::Modal`] reflects the key empirical
/// finding of Tsafrir, Etsion & Feitelson (JSSPP 2005; the paper's
/// reference [28]): users overwhelmingly pick *round* wall-clock values
/// (15 min, 1 h, 4 h, the queue limit, …), so the estimate distribution is
/// concentrated on ~20 modal values. Modal estimates are drawn as the
/// smallest canonical value at or above the padded runtime, which keeps the
/// over/under-estimate mix intact while producing the trace-like spiky
/// histogram.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EstimateModel {
    /// `estimate = runtime × (1 + Exp(surplus))` (continuous).
    Multiplicative,
    /// Padded runtime rounded up to a canonical modal value (Tsafrir-style).
    Modal,
}

/// The canonical estimate values of the modal model, in seconds
/// (5 min … 4 days, roughly the spikes real traces show).
pub const MODAL_ESTIMATES: [f64; 16] = [
    300.0, 600.0, 900.0, 1800.0, 3600.0, 7200.0, 10800.0, 14400.0, 21600.0, 28800.0, 43200.0,
    64800.0, 86400.0, 129600.0, 172800.0, 345600.0,
];

/// Configuration of the synthetic SDSC SP2 workload model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SdscSp2Model {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Cluster size the widths are drawn against.
    pub nodes: u32,
    /// Mean inter-arrival time in seconds.
    pub mean_interarrival: f64,
    /// Target mean runtime in seconds.
    pub mean_runtime: f64,
    /// Coefficient of variation of the runtime log-normal.
    pub runtime_cv: f64,
    /// Maximum runtime in seconds (SDSC SP2 enforced an 18 h limit).
    pub max_runtime: f64,
    /// Minimum runtime in seconds.
    pub min_runtime: f64,
    /// Fraction of jobs whose estimate *under*-estimates the runtime
    /// (the paper measures 8 % for the SDSC SP2 subset).
    pub underestimate_fraction: f64,
    /// Mean of the exponential over-estimation surplus (estimate =
    /// runtime × (1 + Exp(surplus))).
    pub overestimate_surplus_mean: f64,
    /// How estimates are synthesized (continuous vs modal/round values).
    pub estimate_model: EstimateModel,
}

impl Default for SdscSp2Model {
    fn default() -> Self {
        SdscSp2Model {
            jobs: 5000,
            nodes: 128,
            mean_interarrival: 1969.0,
            mean_runtime: 8671.0,
            runtime_cv: 3.0,
            max_runtime: 64_800.0, // 18 hours
            min_runtime: 30.0,
            underestimate_fraction: 0.08,
            overestimate_surplus_mean: 3.0,
            estimate_model: EstimateModel::Multiplicative,
        }
    }
}

/// Weighted power-of-two width distribution with mean ≈ 17 processors,
/// mimicking the SDSC SP2 width histogram.
const WIDTH_WEIGHTS: [(u32, f64); 8] = [
    (1, 0.18),
    (2, 0.12),
    (4, 0.14),
    (8, 0.18),
    (16, 0.16),
    (32, 0.12),
    (64, 0.07),
    (128, 0.03),
];

impl SdscSp2Model {
    /// Smaller model for fast tests: 200 jobs on 128 nodes.
    pub fn small() -> Self {
        SdscSp2Model {
            jobs: 200,
            ..Default::default()
        }
    }

    /// Generates the workload. The same `(model, seed)` pair always produces
    /// the identical job list.
    pub fn generate(&self, seed: u64) -> Vec<BaseJob> {
        let master = SimRng::seed_from(seed);
        let ia_dist = Exponential::new(self.mean_interarrival);
        // Sample runtimes from a log-normal whose raw mean is inflated so the
        // post-cap mean lands near the target.
        let runtime_dist = LogNormal::from_mean_cv(self.mean_runtime * 1.22, self.runtime_cv);
        let under_dist = Uniform::new(0.1, 0.9);
        let surplus_dist = Exponential::new(self.overestimate_surplus_mean);

        let mut submit = 0.0;
        let mut jobs = Vec::with_capacity(self.jobs);
        for k in 0..self.jobs {
            // Independent stream per job: stream label = job index.
            let mut rng = master.fork(k as u64);
            submit += ia_dist.sample(&mut rng);
            let runtime = runtime_dist
                .sample(&mut rng)
                .clamp(self.min_runtime, self.max_runtime);
            let procs = {
                let u = rng.uniform01();
                let mut acc = 0.0;
                let mut chosen = WIDTH_WEIGHTS[WIDTH_WEIGHTS.len() - 1].0;
                for &(w, p) in &WIDTH_WEIGHTS {
                    acc += p;
                    if u < acc {
                        chosen = w;
                        break;
                    }
                }
                chosen.min(self.nodes)
            };
            let trace_estimate = if rng.bernoulli(self.underestimate_fraction) {
                (runtime * under_dist.sample(&mut rng)).max(1.0)
            } else {
                // Over-estimate: users request padded wall-clock limits.
                let padded =
                    (runtime * (1.0 + surplus_dist.sample(&mut rng))).min(self.max_runtime * 4.0);
                match self.estimate_model {
                    EstimateModel::Multiplicative => padded,
                    EstimateModel::Modal => MODAL_ESTIMATES
                        .iter()
                        .copied()
                        .find(|&m| m >= padded)
                        .unwrap_or(MODAL_ESTIMATES[MODAL_ESTIMATES.len() - 1]),
                }
            };
            jobs.push(BaseJob {
                id: k as JobId,
                submit,
                runtime,
                trace_estimate,
                procs,
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Vec<BaseJob> {
        SdscSp2Model::default().generate(42)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SdscSp2Model::default().generate(7);
        let b = SdscSp2Model::default().generate(7);
        assert_eq!(a, b);
        let c = SdscSp2Model::default().generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn job_count_and_ids() {
        let jobs = workload();
        assert_eq!(jobs.len(), 5000);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id as usize, i);
        }
    }

    #[test]
    fn arrivals_are_monotone() {
        let jobs = workload();
        for w in jobs.windows(2) {
            assert!(w[1].submit >= w[0].submit);
        }
    }

    #[test]
    fn mean_interarrival_near_target() {
        let jobs = workload();
        let span = jobs.last().unwrap().submit - jobs[0].submit;
        let mean_ia = span / (jobs.len() - 1) as f64;
        assert!(
            (mean_ia / 1969.0 - 1.0).abs() < 0.08,
            "mean inter-arrival {mean_ia}"
        );
    }

    #[test]
    fn mean_runtime_near_target() {
        let jobs = workload();
        let mean = jobs.iter().map(|j| j.runtime).sum::<f64>() / jobs.len() as f64;
        assert!(
            (mean / 8671.0 - 1.0).abs() < 0.12,
            "mean runtime {mean} (target 8671)"
        );
    }

    #[test]
    fn mean_width_near_target() {
        let jobs = workload();
        let mean = jobs.iter().map(|j| j.procs as f64).sum::<f64>() / jobs.len() as f64;
        assert!((mean - 17.0).abs() < 2.5, "mean width {mean} (target 17)");
    }

    #[test]
    fn runtime_bounds_respected() {
        let jobs = workload();
        assert!(jobs
            .iter()
            .all(|j| j.runtime >= 30.0 && j.runtime <= 64_800.0));
    }

    #[test]
    fn widths_are_valid() {
        let jobs = workload();
        assert!(jobs.iter().all(|j| j.procs >= 1 && j.procs <= 128));
    }

    #[test]
    fn estimate_accuracy_mix_matches_paper() {
        let jobs = workload();
        let under =
            jobs.iter().filter(|j| j.trace_estimate < j.runtime).count() as f64 / jobs.len() as f64;
        assert!(
            (under - 0.08).abs() < 0.02,
            "under-estimate fraction {under} (target 0.08)"
        );
    }

    #[test]
    fn estimates_positive() {
        let jobs = workload();
        assert!(jobs.iter().all(|j| j.trace_estimate > 0.0));
    }

    #[test]
    fn small_model_for_tests() {
        let jobs = SdscSp2Model::small().generate(1);
        assert_eq!(jobs.len(), 200);
    }

    #[test]
    fn modal_estimates_take_canonical_values() {
        let model = SdscSp2Model {
            estimate_model: EstimateModel::Modal,
            ..Default::default()
        };
        let jobs = model.generate(42);
        let modal = |e: f64| MODAL_ESTIMATES.iter().any(|&m| (m - e).abs() < 1e-9);
        let over: Vec<&BaseJob> = jobs
            .iter()
            .filter(|j| j.trace_estimate >= j.runtime)
            .collect();
        // All over-estimates land on canonical values...
        assert!(over.iter().all(|j| modal(j.trace_estimate)));
        // ...and the distribution is concentrated: few distinct values.
        let mut distinct: Vec<u64> = over.iter().map(|j| j.trace_estimate as u64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= MODAL_ESTIMATES.len());
        // Under-estimate mix unchanged.
        let under =
            jobs.iter().filter(|j| j.trace_estimate < j.runtime).count() as f64 / jobs.len() as f64;
        assert!((under - 0.08).abs() < 0.02, "under fraction {under}");
    }

    #[test]
    fn modal_estimates_still_cover_runtimes() {
        let model = SdscSp2Model {
            estimate_model: EstimateModel::Modal,
            ..Default::default()
        };
        let jobs = model.generate(7);
        for j in jobs.iter().filter(|j| j.trace_estimate >= j.runtime) {
            assert!(j.trace_estimate >= j.runtime, "over-estimates stay over");
        }
    }
}
