//! Bid-based model: the unbounded linear penalty (paper Figure 2) and its
//! effect on the five bid-based policies under inaccurate runtime estimates.
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example bid_based
//! ```

use ccs_economy::penalty::{break_even_delay, penalty_curve};
use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_simsvc::{simulate, RunConfig};
use ccs_workload::{apply_scenario, Job, ScenarioTransform, SdscSp2Model, Urgency};

fn main() {
    // --- the penalty function itself (paper Figure 2) ---
    let job = Job {
        id: 0,
        submit: 0.0,
        runtime: 3600.0,
        estimate: 3600.0,
        procs: 8,
        urgency: Urgency::High,
        deadline: 2.0 * 3600.0,
        budget: 50_000.0,
        penalty_rate: 10.0,
    };
    println!("--- penalty function (budget $50k, deadline 2 h, $10/s late) ---");
    for (t, u) in penalty_curve(&job, 4.0 * 3600.0, 9) {
        println!("finish {:>6.0} s after submit -> utility {:>10.0} $", t, u);
    }
    println!(
        "break-even: utility hits zero {:.0} s after submission\n",
        break_even_delay(&job).unwrap()
    );

    // --- policies facing the penalty under trace (inaccurate) estimates ---
    let base = SdscSp2Model {
        jobs: 1500,
        ..Default::default()
    }
    .generate(13);
    let jobs = apply_scenario(
        &base,
        &ScenarioTransform {
            inaccuracy_pct: 100.0, // the paper's Set B
            ..Default::default()
        },
        13,
    );
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::BidBased,
    };
    println!("--- bid-based model, trace estimates (Set B) ---");
    println!(
        "{:<12} {:>9} {:>9} {:>11} {:>12} {:>14}",
        "policy", "accepted", "SLA %", "reliab. %", "penalised", "profit %"
    );
    for kind in PolicyKind::BID_BASED {
        let res = simulate(&jobs, kind, &cfg);
        let penalised = res
            .records
            .iter()
            .filter(|r| r.accepted && r.utility < 0.0)
            .count();
        println!(
            "{:<12} {:>9} {:>9.1} {:>11.1} {:>12} {:>14.1}",
            kind.name(),
            res.metrics.accepted,
            res.metrics.sla_pct(),
            res.metrics.reliability_pct(),
            penalised,
            res.metrics.profitability_pct()
        );
    }
    println!(
        "\nFirstReward accepts the fewest jobs (risk-averse under unbounded \
         penalties); LibraRiskD handles the inaccurate estimates best among \
         the Libra family (paper Section 6.2)."
    );
}
