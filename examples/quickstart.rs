//! Quickstart: simulate a commercial computing service and measure the four
//! objectives of Yeo & Buyya (IPDPS 2007).
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example quickstart
//! ```

use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_risk::{normalize::normalize, separate, Objective};
use ccs_simsvc::{simulate, RunConfig};
use ccs_workload::{apply_scenario, ScenarioTransform, SdscSp2Model, WorkloadSummary};

fn main() {
    // 1. Synthesize an SDSC SP2-like trace (the paper's workload) and
    //    annotate it with QoS attributes: deadline, budget, penalty rate.
    let base = SdscSp2Model {
        jobs: 1000,
        ..Default::default()
    }
    .generate(42);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 42);
    println!(
        "--- workload ---\n{}\n",
        WorkloadSummary::compute(&jobs, 128)
    );

    // 2. Run it through a policy on a 128-node service.
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    println!("--- objectives (commodity market, accurate estimates) ---");
    println!(
        "{:<12} {:>10} {:>8} {:>12} {:>14}",
        "policy", "wait (s)", "SLA %", "reliability %", "profitability %"
    );
    let mut sla_by_policy = Vec::new();
    for kind in PolicyKind::COMMODITY {
        let res = simulate(&jobs, kind, &cfg);
        let [wait, sla, rel, prof] = res.metrics.objectives();
        println!(
            "{:<12} {:>10.0} {:>8.1} {:>12.1} {:>14.1}",
            kind.name(),
            wait,
            sla,
            rel,
            prof
        );
        sla_by_policy.push(sla);
    }

    // 3. Normalize across policies and compute a separate risk analysis —
    //    the paper's performance (μ) / volatility (σ) pair.
    let normalized = normalize(Objective::Sla, &sla_by_policy);
    println!("\n--- separate risk analysis of the SLA objective ---");
    for (kind, norm) in PolicyKind::COMMODITY.iter().zip(&normalized) {
        println!("{:<12} normalized SLA = {norm:.3}", kind.name());
    }
    let across = separate(&normalized);
    println!(
        "\nspread across policies: performance {:.3}, volatility {:.3}",
        across.performance, across.volatility
    );
}
