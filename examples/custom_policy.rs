//! Extending the library: write your own resource-management policy and
//! evaluate it with the same simulator and risk analysis as the built-ins.
//!
//! The custom policy here is "GreedyValue": space-shared, no backfilling,
//! accepts everything whose deadline is feasible, and always runs the
//! queued job with the highest budget-per-processor-second.
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example custom_policy
//! ```

use ccs_cluster::SpaceShared;
use ccs_des::{EventQueue, SimTime};
use ccs_economy::EconomicModel;
use ccs_policies::{Outcome, Policy, PolicyKind, RejectReason};
use ccs_simsvc::{simulate, simulate_with, RunConfig};
use ccs_workload::{apply_scenario, Job, JobId, ScenarioTransform, SdscSp2Model};
use std::collections::HashMap;

/// Highest-value-first, space-shared, no admission control beyond deadline
/// feasibility. Deliberately naive — the point is the trait, not the policy.
struct GreedyValue {
    cluster: SpaceShared,
    queue: Vec<Job>,
    running: HashMap<JobId, f64>, // start times
    completions: EventQueue<JobId>,
}

impl GreedyValue {
    fn new(nodes: u32) -> Self {
        GreedyValue {
            cluster: SpaceShared::new(nodes),
            queue: Vec::new(),
            running: HashMap::new(),
            completions: EventQueue::new(),
        }
    }

    fn value_density(job: &Job) -> f64 {
        job.budget / (job.estimate * job.procs as f64).max(1.0)
    }

    fn try_start(&mut self, now: f64, out: &mut Vec<Outcome>) {
        loop {
            self.queue
                .sort_by(|a, b| Self::value_density(b).total_cmp(&Self::value_density(a)));
            // Drop jobs whose deadline can no longer be met.
            while let Some(head) = self.queue.first() {
                if now + head.estimate > head.absolute_deadline() {
                    let j = self.queue.remove(0);
                    out.push(Outcome::Rejected {
                        job: j.id,
                        at: now,
                        reason: RejectReason::EstimateExceedsDeadline,
                    });
                } else {
                    break;
                }
            }
            match self.queue.first() {
                Some(head) if head.procs <= self.cluster.free_procs() => {
                    let job = self.queue.remove(0);
                    self.cluster.start(job.id, job.procs, now + job.estimate);
                    self.completions
                        .push(SimTime::new(now + job.runtime), job.id);
                    out.push(Outcome::Accepted {
                        job: job.id,
                        at: now,
                    });
                    out.push(Outcome::Started {
                        job: job.id,
                        at: now,
                    });
                    self.running.insert(job.id, now);
                }
                _ => return,
            }
        }
    }
}

impl Policy for GreedyValue {
    fn name(&self) -> &'static str {
        "GreedyValue"
    }

    fn on_submit(&mut self, job: &Job, now: f64, out: &mut Vec<Outcome>) {
        self.queue.push(*job);
        self.try_start(now, out);
    }

    fn next_event_time(&mut self) -> Option<f64> {
        self.completions.peek_time().map(|t| t.as_secs())
    }

    fn advance_to(&mut self, t: f64, out: &mut Vec<Outcome>) {
        while let Some(et) = self.completions.peek_time() {
            if et.as_secs() > t {
                break;
            }
            let (et, id) = self.completions.pop().unwrap();
            let start = self.running.remove(&id).expect("unknown completion");
            self.cluster.finish(id);
            out.push(Outcome::Completed {
                job: id,
                start,
                finish: et.as_secs(),
                charged: None,
            });
            self.try_start(et.as_secs(), out);
        }
    }

    fn drain(&mut self, out: &mut Vec<Outcome>) {
        self.advance_to(f64::INFINITY, out);
    }
}

fn main() {
    let base = SdscSp2Model {
        jobs: 1200,
        ..Default::default()
    }
    .generate(99);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 99);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::BidBased,
    };

    println!(
        "{:<12} {:>8} {:>10} {:>13} {:>10}",
        "policy", "SLA %", "wait (s)", "reliability %", "profit %"
    );
    // The custom policy, driven by the standard runner...
    let custom = simulate_with(&jobs, Box::new(GreedyValue::new(128)), &cfg);
    let [w, s, r, p] = custom.metrics.objectives();
    println!(
        "{:<12} {:>8.1} {:>10.0} {:>13.1} {:>10.1}",
        "GreedyValue", s, w, r, p
    );

    // ...side by side with the paper's bid-based policies.
    for kind in PolicyKind::BID_BASED {
        let res = simulate(&jobs, kind, &cfg);
        let [w, s, r, p] = res.metrics.objectives();
        println!(
            "{:<12} {:>8.1} {:>10.0} {:>13.1} {:>10.1}",
            kind.name(),
            s,
            w,
            r,
            p
        );
    }
    println!(
        "\nAny type implementing ccs_policies::Policy plugs into \
         ccs_simsvc::simulate_with and the full risk-analysis pipeline."
    );
}
