//! Risk analysis without the simulator: the `ccs-risk` crate grades any
//! system that can report objective measurements.
//!
//! Here we take (fictional) monthly SLA-attainment percentages of three
//! cloud providers across five regions, run separate risk analysis per
//! region, rank the providers both ways, and emit an SVG risk plot.
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example risk_report
//! ```

use ccs_risk::report::{ascii_plot, extrema_table, ranking_table};
use ccs_risk::svg::{render, SvgOptions};
use ccs_risk::{normalize::normalize, rank, separate, Objective, PolicySeries, RankBy, RiskPlot};

fn main() {
    // providers x regions x months: raw SLA percentages.
    let providers = ["AcmeCloud", "BetaGrid", "GammaCompute"];
    let monthly: [[[f64; 6]; 5]; 3] = [
        // AcmeCloud: strong and steady everywhere.
        [
            [99.0, 98.5, 99.2, 98.9, 99.1, 98.7],
            [97.8, 98.0, 98.2, 97.9, 98.1, 98.0],
            [99.5, 99.4, 99.6, 99.5, 99.3, 99.4],
            [96.0, 96.5, 96.2, 96.1, 96.4, 96.3],
            [98.8, 98.9, 99.0, 98.7, 98.9, 98.8],
        ],
        // BetaGrid: occasionally brilliant, often erratic.
        [
            [99.9, 82.0, 99.8, 85.0, 99.7, 84.0],
            [99.5, 99.6, 70.0, 99.4, 99.6, 72.0],
            [88.0, 99.9, 86.0, 99.8, 87.0, 99.9],
            [99.0, 60.0, 99.2, 65.0, 99.1, 62.0],
            [99.9, 99.8, 75.0, 99.9, 74.0, 99.8],
        ],
        // GammaCompute: mediocre but consistent.
        [
            [90.0, 90.5, 89.8, 90.2, 90.1, 89.9],
            [91.0, 91.2, 90.8, 91.1, 90.9, 91.0],
            [89.5, 89.8, 89.6, 89.7, 89.9, 89.6],
            [90.8, 91.0, 90.9, 90.7, 91.1, 90.8],
            [90.2, 90.0, 90.3, 90.1, 90.2, 90.0],
        ],
    ];

    // One risk point per region per provider: normalize each month across
    // providers, then separate analysis over the six months.
    let mut series: Vec<PolicySeries> = providers
        .iter()
        .map(|p| PolicySeries::new(*p, Vec::new()))
        .collect();
    #[allow(clippy::needless_range_loop)] // region indexes all three providers
    for region in 0..5 {
        // normalized[month][provider]
        let mut norm = [[0.0f64; 3]; 6];
        for month in 0..6 {
            let raw: Vec<f64> = (0..3).map(|p| monthly[p][region][month]).collect();
            for (p, v) in normalize(Objective::Sla, &raw).into_iter().enumerate() {
                norm[month][p] = v;
            }
        }
        for (p, s) in series.iter_mut().enumerate() {
            let months: Vec<f64> = (0..6).map(|m| norm[m][p]).collect();
            s.points.push(separate(&months));
        }
    }
    let plot = RiskPlot::new("provider SLA attainment across 5 regions", series);

    println!("{}", ascii_plot(&plot, 64, 18));
    println!(
        "--- extrema (cf. paper Table II) ---\n{}",
        extrema_table(&plot)
    );
    println!(
        "--- ranked by best performance (cf. Table III) ---\n{}",
        ranking_table(&rank(&plot, RankBy::BestPerformance), "max perf", "min vol")
    );
    println!(
        "--- ranked by best volatility (cf. Table IV) ---\n{}",
        ranking_table(&rank(&plot, RankBy::BestVolatility), "min vol", "max perf")
    );

    let out = std::env::temp_dir().join("risk_report.svg");
    std::fs::write(&out, render(&plot, &SvgOptions::default())).expect("write svg");
    println!("SVG risk plot written to {}", out.display());
}
