//! Service monitoring: a diurnal (office-hours) workload driven through a
//! policy, with the utilization / running / waiting timeline the paper's
//! "monitoring mechanisms" assumption implies (Section 3.3).
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example service_monitor
//! ```

use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_simsvc::{simulate, RunConfig, Timeline};
use ccs_workload::{
    apply_diurnal, apply_scenario, DiurnalProfile, ScenarioTransform, SdscSp2Model,
};

fn main() {
    // Two days of arrivals with a strong office-hours cycle.
    let base = SdscSp2Model {
        jobs: 400,
        ..Default::default()
    }
    .generate(21);
    let diurnal = apply_diurnal(&base, &DiurnalProfile::office_hours(6.0), 21);
    let jobs = apply_scenario(
        &diurnal,
        &ScenarioTransform {
            arrival_delay_factor: 0.05, // compress to ~2 simulated days
            ..Default::default()
        },
        21,
    );

    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    for kind in [PolicyKind::SjfBf, PolicyKind::Libra] {
        let res = simulate(&jobs, kind, &cfg);
        let tl = Timeline::from_run(&jobs, &res.records, cfg.nodes, 3600.0);
        println!("=== {} ===", kind.name());
        println!(
            "mean utilization {:.1} %, peak waiting queue {} jobs, SLA {:.1} %",
            tl.mean_utilization() * 100.0,
            tl.peak_waiting(),
            res.metrics.sla_pct()
        );
        // Hourly sparkline of the first 36 buckets.
        let head = Timeline {
            bucket: tl.bucket,
            points: tl.points.iter().take(36).cloned().collect(),
        };
        print!("{}", head.render(40));
        println!();
    }
    println!(
        "The diurnal peaks show up as utilization waves; the backfilling \
         policy builds a waiting queue during the daily peak while Libra's \
         admit-at-submission model never queues (waiting stays 0)."
    );
}
