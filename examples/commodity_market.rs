//! Commodity market model: sweep the workload level and rank the paper's
//! five commodity policies by separate risk analysis of profitability.
//!
//! This is a miniature of the paper's Figure 3g/h methodology: one scenario
//! (varying arrival-delay factor), six experiment points, normalized
//! per-point across policies, then performance/volatility per policy.
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example commodity_market
//! ```

use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_risk::report::{ascii_plot, ranking_table};
use ccs_risk::{normalize::normalize, rank, separate, Objective, PolicySeries, RankBy, RiskPlot};
use ccs_simsvc::{simulate, RunConfig};
use ccs_workload::{apply_scenario, ScenarioTransform, SdscSp2Model};

fn main() {
    let base = SdscSp2Model {
        jobs: 1500,
        ..Default::default()
    }
    .generate(7);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    let factors = [0.02, 0.10, 0.25, 0.50, 0.75, 1.00];

    // raw[point][policy] = profitability %.
    let mut raw = Vec::new();
    for &f in &factors {
        let jobs = apply_scenario(
            &base,
            &ScenarioTransform {
                arrival_delay_factor: f,
                ..Default::default()
            },
            7,
        );
        let row: Vec<f64> = PolicyKind::COMMODITY
            .iter()
            .map(|&k| simulate(&jobs, k, &cfg).metrics.profitability_pct())
            .collect();
        println!(
            "arrival factor {f:>5}: profitability % = {}",
            row.iter()
                .zip(PolicyKind::COMMODITY)
                .map(|(v, k)| format!("{}={v:.1}", k.name()))
                .collect::<Vec<_>>()
                .join("  ")
        );
        raw.push(row);
    }

    // Normalize per experiment point, then separate analysis per policy.
    let series: Vec<PolicySeries> = PolicyKind::COMMODITY
        .iter()
        .enumerate()
        .map(|(p, kind)| {
            let normalized: Vec<f64> = raw
                .iter()
                .map(|row| normalize(Objective::Profitability, row)[p])
                .collect();
            PolicySeries::new(kind.name(), vec![separate(&normalized)])
        })
        .collect();
    let plot = RiskPlot::new("profitability across workload levels", series);

    println!("\n{}", ascii_plot(&plot, 64, 16));
    let rows = rank(&plot, RankBy::BestPerformance);
    println!("{}", ranking_table(&rows, "max perf", "min vol"));
    println!(
        "winner: {} — the utilization-adaptive pricing of Libra+$ extracts \
         more revenue as the cluster saturates (paper Section 6.1).",
        rows[0].name
    );
}
