//! Heterogeneous clusters: the Libra family on nodes of unequal speed.
//!
//! The computational-economy scheduling literature (Libra included) targets
//! clusters whose nodes differ in speed. This example compares a
//! homogeneous 128 × 1.0 cluster against heterogeneous mixes of identical
//! *aggregate* capacity, showing how tight-deadline jobs migrate to the
//! fast nodes and what that does to the four objectives.
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example heterogeneous_cluster
//! ```

use ccs_economy::EconomicModel;
use ccs_policies::{LibraPolicy, LibraVariant};
use ccs_simsvc::{simulate_with, RunConfig};
use ccs_workload::{apply_scenario, ScenarioTransform, SdscSp2Model};

fn main() {
    let base = SdscSp2Model {
        jobs: 1200,
        ..Default::default()
    }
    .generate(17);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 17);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::BidBased,
    };

    let mixes: Vec<(&str, Vec<f64>)> = vec![
        ("homogeneous 128 x 1.0", vec![1.0; 128]),
        ("64 x 0.5 + 64 x 1.5", {
            let mut r = vec![0.5; 64];
            r.extend(vec![1.5; 64]);
            r
        }),
        ("96 x 0.75 + 32 x 1.75", {
            let mut r = vec![0.75; 96];
            r.extend(vec![1.75; 32]);
            r
        }),
    ];

    println!(
        "{:<24} {:>9} {:>8} {:>13} {:>10}",
        "cluster", "accepted", "SLA %", "reliability %", "profit %"
    );
    for (label, ratings) in mixes {
        let aggregate: f64 = ratings.iter().sum();
        assert!((aggregate - 128.0).abs() < 1e-9, "same total capacity");
        let policy = LibraPolicy::with_ratings(LibraVariant::Plain, cfg.econ, ratings);
        let res = simulate_with(&jobs, Box::new(policy), &cfg);
        println!(
            "{:<24} {:>9} {:>8.1} {:>13.1} {:>10.1}",
            label,
            res.metrics.accepted,
            res.metrics.sla_pct(),
            res.metrics.reliability_pct(),
            res.metrics.profitability_pct()
        );
    }
    println!(
        "\nEqual aggregate capacity is not equal service: slow nodes cannot \
         host tight-deadline jobs at all (est > deadline x rating), so \
         heterogeneity concentrates urgent work on the fast nodes."
    );
}
