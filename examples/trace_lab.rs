//! Trace laboratory: characterize the bundled workload models and watch how
//! the same policy behaves across them.
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example trace_lab
//! ```

use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_simsvc::{simulate, RunConfig};
use ccs_workload::{
    apply_diurnal, apply_scenario, BaseJob, DiurnalProfile, LublinModel, ScenarioTransform,
    SdscSp2Model, TraceHistograms, WorkloadSummary,
};

fn main() {
    let sdsc = SdscSp2Model {
        jobs: 2000,
        ..Default::default()
    }
    .generate(31);
    let lublin = LublinModel {
        jobs: 2000,
        ..Default::default()
    }
    .generate(31);
    let diurnal = apply_diurnal(&sdsc, &DiurnalProfile::office_hours(6.0), 31);

    let models: Vec<(&str, &Vec<BaseJob>)> = vec![
        ("SDSC SP2 synthetic", &sdsc),
        ("Lublin-Feitelson", &lublin),
        ("SDSC + diurnal", &diurnal),
    ];

    // 1. Characterize each model.
    for (name, base) in &models {
        println!("=== {name} ===");
        let jobs = apply_scenario(base, &ScenarioTransform::default(), 31);
        println!("{}\n", WorkloadSummary::compute(&jobs, 128));
        let h = TraceHistograms::of(base);
        println!("runtime histogram (log bins):\n{}", h.runtime.render(40));
    }

    // 2. The same policy across the three models.
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    println!(
        "{:<22} {:>8} {:>10} {:>13} {:>10}",
        "model", "SLA %", "wait (s)", "reliability %", "profit %"
    );
    for (name, base) in &models {
        let jobs = apply_scenario(base, &ScenarioTransform::default(), 31);
        let res = simulate(&jobs, PolicyKind::SjfBf, &cfg);
        let [w, s, r, p] = res.metrics.objectives();
        println!(
            "{:<22} {:>8.1} {:>10.0} {:>13.1} {:>10.1}",
            name, s, w, r, p
        );
    }
    println!(
        "\nThe Lublin model's bursty gamma arrivals and width-correlated \
         runtimes stress the scheduler differently from the smoother SDSC \
         synthetic — yet the policy orderings survive (see \
         `utility_risk robustness`)."
    );
}
