//! A-priori risk analysis (the paper's closing direction): use measured
//! per-scenario risk to (i) forecast risk for an anticipated future
//! scenario mix, (ii) find the objective weighting at which the recommended
//! policy flips, and (iii) identify the Pareto-efficient policies.
//!
//! ```sh
//! cargo run --release -p ccs-experiments --example weight_sensitivity -- --quick
//! ```

use ccs_economy::EconomicModel;
use ccs_experiments::{analyze, run_grid, EstimateSet, Scenario};
use ccs_risk::apriori::{forecast, pareto_front, uniform_mix, weight_sensitivity};
use ccs_risk::{integrated_equal, kendall_tau, rank, Objective, RankBy, RiskMeasure};

fn main() {
    let (cfg, _) = ccs_experiments::parse_cli(&std::env::args().skip(1).collect::<Vec<_>>());
    println!("running commodity-market grid ({} jobs)...", cfg.trace.jobs);
    let analysis = analyze(&run_grid(
        EconomicModel::CommodityMarket,
        EstimateSet::B,
        &cfg,
    ));

    // Per-policy, per-objective separate risk averaged over scenarios.
    let policies: Vec<(String, Vec<RiskMeasure>)> = analysis
        .policy_names
        .iter()
        .enumerate()
        .map(|(p, name)| {
            let per_obj: Vec<RiskMeasure> = (0..4)
                .map(|oi| {
                    let pts: Vec<RiskMeasure> =
                        analysis.separate.iter().map(|row| row[p][oi]).collect();
                    forecast(&pts, &uniform_mix(pts.len()))
                })
                .collect();
            (name.clone(), per_obj)
        })
        .collect();

    // (i) Forecast under a future that is mostly heavy-load scenarios.
    println!("\n--- forecast: future dominated by the workload scenario ---");
    let workload_idx = Scenario::ALL
        .iter()
        .position(|s| matches!(s, Scenario::Workload))
        .unwrap();
    let mut mix = vec![0.3 / 11.0; 12];
    mix[workload_idx] = 0.7; // 70 % of future operation looks like the load sweep
    for (p, name) in analysis.policy_names.iter().enumerate() {
        let all4: Vec<RiskMeasure> = analysis
            .separate
            .iter()
            .map(|row| integrated_equal(&row[p]))
            .collect();
        let f = forecast(&all4, &mix);
        println!(
            "{name:<12} expected performance {:.3}, risk {:.3}",
            f.performance, f.volatility
        );
    }

    // (ii) Where does the best policy flip as profitability gains weight?
    let prof_idx = Objective::ALL
        .iter()
        .position(|o| *o == Objective::Profitability)
        .unwrap();
    let s = weight_sensitivity(&policies, prof_idx, 21);
    println!("\n--- sensitivity to the profitability weight ---");
    for p in s.points.iter().step_by(4) {
        println!(
            "w(profitability) = {:.2} -> best: {:<12} (perf {:.3})",
            p.weight, p.best, p.measure.performance
        );
    }
    if s.crossovers.is_empty() {
        println!("no crossover: one policy dominates at every weighting");
    } else {
        println!("recommendation flips at w ≈ {:?}", s.crossovers);
    }

    // (iii) Pareto front in the (performance, volatility) plane.
    let all4_measures: Vec<RiskMeasure> = policies
        .iter()
        .map(|(_, ms)| integrated_equal(ms))
        .collect();
    let front = pareto_front(&all4_measures);
    println!("\n--- Pareto-efficient policies (4-objective integration) ---");
    for &i in &front {
        println!(
            "{:<12} perf {:.3} vol {:.3}",
            policies[i].0, all4_measures[i].performance, all4_measures[i].volatility
        );
    }

    // How much does the ranking criterion matter?
    let plot = analysis.integrated_plot(&Objective::ALL);
    let by_perf: Vec<String> = rank(&plot, RankBy::BestPerformance)
        .into_iter()
        .map(|r| r.name)
        .collect();
    let by_vol: Vec<String> = rank(&plot, RankBy::BestVolatility)
        .into_iter()
        .map(|r| r.name)
        .collect();
    println!(
        "\nKendall τ between best-performance and best-volatility rankings: {:.2}",
        kendall_tau(&by_perf, &by_vol)
    );
}
