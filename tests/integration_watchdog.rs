//! Watchdog-bounded grid cells and journal hygiene.
//!
//! - A grid run under a generous per-cell budget is byte-identical to an
//!   unguarded run (the watchdog observes, it never steers).
//! - A synthetically stuck cell (the `CCS_STALL_CELL` drill) is cancelled
//!   into a Budget-kind [`CellError`] while the rest of the grid completes,
//!   and a `--resume` rerun without the drill heals to output
//!   byte-identical to an untouched run.
//! - Budget-cancelled cells are never journaled, so resume re-runs exactly
//!   the failed work.
//! - Journal compaction rewrites the journal without changing what a
//!   resume reads from it.

use ccs_economy::EconomicModel;
use ccs_experiments::{
    run_evaluation_ctl, run_grid, run_grid_ctl, CellErrorKind, EstimateSet, ExperimentConfig,
    GridControl, Journal,
};
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccs_watchdog_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig::quick().with_jobs(25)
}

/// The watchdog must be an observer: under a budget no real cell ever
/// trips, the guarded grid's numbers are bit-for-bit those of the
/// unguarded fast path.
#[test]
fn generous_budget_grid_is_byte_identical_to_unguarded() {
    let cfg = small_cfg();
    let plain = run_grid(EconomicModel::CommodityMarket, EstimateSet::A, &cfg);
    let guarded = run_grid_ctl(
        EconomicModel::CommodityMarket,
        EstimateSet::A,
        &cfg,
        &GridControl {
            cell_wall_budget: Some(300.0),
            cell_event_budget: Some(50_000_000),
            ..Default::default()
        },
    );
    assert!(guarded.errors.is_empty(), "{:?}", guarded.errors);
    assert_eq!(
        plain.raw, guarded.raw,
        "a non-tripping watchdog must not change a single bit"
    );
}

/// A starvation-level event budget cancels every cell into a Budget-kind
/// error, nothing is journaled, and a later unbudgeted resume over the
/// same journal recomputes everything to the true numbers.
#[test]
fn tiny_budget_cancels_cells_without_journaling_them() {
    let dir = temp_dir("tiny");
    let journal = dir.join("journal.jsonl");
    let cfg = small_cfg();

    let starved = run_evaluation_ctl(
        &cfg,
        &GridControl {
            journal: Some(journal.clone()),
            cell_event_budget: Some(10),
            ..Default::default()
        },
    );
    let errors = starved.cell_errors();
    assert!(
        !errors.is_empty(),
        "an event budget of 10 must cancel cells"
    );
    for e in &errors {
        assert_eq!(e.kind, CellErrorKind::Budget, "{e}");
        assert!(e.to_string().contains("exceeded its budget"), "{e}");
    }

    // Nothing was journaled (the journal may not even exist), so the
    // resumed, unbudgeted run recomputes every cell — and matches a fresh
    // evaluation exactly.
    let resumed = run_evaluation_ctl(
        &cfg,
        &GridControl {
            journal: Some(journal),
            ..Default::default()
        },
    );
    assert!(resumed.cell_errors().is_empty());
    let fresh = run_evaluation_ctl(&cfg, &GridControl::default());
    for (r, f) in resumed.raw_grids.iter().zip(&fresh.raw_grids) {
        assert_eq!(r.raw, f.raw, "{} / {}", r.econ, r.set.label());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Library-level stall drill: the wedged cell is cancelled with a
/// Budget-kind error naming the cell, every other cell completes with real
/// numbers.
#[test]
fn stalled_cell_is_cancelled_while_the_rest_completes() {
    let cfg = small_cfg();
    let grid = run_grid_ctl(
        EconomicModel::CommodityMarket,
        EstimateSet::A,
        &cfg,
        &GridControl {
            stall_cell: Some("0:1:SJF-BF".into()),
            ..Default::default()
        },
    );
    assert_eq!(grid.errors.len(), 1, "{:?}", grid.errors);
    let err = &grid.errors[0];
    assert_eq!(err.kind, CellErrorKind::Budget);
    assert_eq!(err.policy, "SJF-BF");
    assert_eq!((err.scenario_idx, err.value_idx), (0, 1));

    // The stalled cell holds the placeholder; its neighbours hold real,
    // untouched numbers.
    let reference = run_grid(EconomicModel::CommodityMarket, EstimateSet::A, &cfg);
    let stalled_col = reference
        .policies
        .iter()
        .position(|p| p.name() == "SJF-BF")
        .unwrap();
    for (s, per_value) in grid.raw.iter().enumerate() {
        for (v, per_policy) in per_value.iter().enumerate() {
            for (p, cell) in per_policy.iter().enumerate() {
                if (s, v, p) == (0, 1, stalled_col) {
                    assert_eq!(*cell, [0.0; 4], "stalled cell keeps the placeholder");
                } else {
                    assert_eq!(*cell, reference.raw[s][v][p], "cell {s}:{v}:{p} diverged");
                }
            }
        }
    }
}

/// Binary-level acceptance of the stall drill: `utility_risk` under
/// `CCS_STALL_CELL` exits nonzero with a budget-worded report, and a
/// `--resume` rerun without the drill (plus `--compact-journal` hygiene)
/// produces stdout byte-identical to an untouched run.
#[test]
fn stall_drill_reports_budget_error_and_resume_heals() {
    let dir = temp_dir("stall");
    let journal = dir.join("journal.jsonl");
    let out = dir.join("out");
    let args = |extra: &[&str]| {
        let mut a = vec![
            "summary".to_string(),
            "--quick".into(),
            "--jobs".into(),
            "25".into(),
            "--quiet".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ];
        for e in extra {
            a.push(e.to_string());
        }
        a
    };
    let resume = [
        "--resume".to_string(),
        journal.to_str().unwrap().to_string(),
    ];
    let resume_refs: Vec<&str> = resume.iter().map(|s| s.as_str()).collect();

    // Run 1: one commodity cell per grid is wedged. The process finishes
    // the sweep, reports the budget cancellation, and exits 1.
    let stalled = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(args(&resume_refs))
        .env("CCS_STALL_CELL", "0:1:SJF-BF")
        .output()
        .expect("spawn utility_risk");
    assert_eq!(
        stalled.status.code(),
        Some(1),
        "a stalled cell must exit(1), not hang: {}",
        String::from_utf8_lossy(&stalled.stderr)
    );
    let stderr = String::from_utf8_lossy(&stalled.stderr);
    assert!(
        stderr.contains("exceeded its budget"),
        "stderr must word the failure as a budget cancellation: {stderr}"
    );
    let errors_json =
        std::fs::read_to_string(out.join("cell_errors.json")).expect("cell_errors.json written");
    assert!(errors_json.contains("SJF-BF"), "{errors_json}");
    assert!(errors_json.contains("Budget"), "{errors_json}");

    // Run 2: resume without the drill, compacting the journal afterwards.
    let healed = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(args(&[resume_refs[0], resume_refs[1], "--compact-journal"]))
        .env_remove("CCS_STALL_CELL")
        .output()
        .expect("spawn utility_risk");
    assert_eq!(
        healed.status.code(),
        Some(0),
        "healed resume must exit 0: {}",
        String::from_utf8_lossy(&healed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&healed.stderr).contains("journal compacted"),
        "compaction must be reported: {}",
        String::from_utf8_lossy(&healed.stderr)
    );

    // Run 3: replay purely from the compacted journal — still clean.
    let replay = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(args(&resume_refs))
        .output()
        .expect("spawn utility_risk");
    assert_eq!(replay.status.code(), Some(0));

    // Run 4: fresh, untouched run. All three clean runs agree byte for
    // byte on stdout (the per-policy summary tables).
    let fresh = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(args(&[]))
        .output()
        .expect("spawn utility_risk");
    assert_eq!(fresh.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&healed.stdout),
        String::from_utf8_lossy(&fresh.stdout),
        "healed resume must match an untouched run"
    );
    assert_eq!(
        String::from_utf8_lossy(&replay.stdout),
        String::from_utf8_lossy(&fresh.stdout),
        "replay from the compacted journal must match an untouched run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction rewrites the journal to one record per cell without changing
/// what a resume computes from it.
#[test]
fn journal_compaction_preserves_resume_results() {
    let dir = temp_dir("compact");
    let journal = dir.join("journal.jsonl");
    let cfg = small_cfg();

    let full = run_evaluation_ctl(
        &cfg,
        &GridControl {
            journal: Some(journal.clone()),
            ..Default::default()
        },
    );
    assert!(full.cell_errors().is_empty());

    let before = std::fs::read_to_string(&journal).unwrap().lines().count();
    let (read, kept) = Journal::compact(&journal).expect("compaction succeeds");
    assert_eq!(read, before);
    assert!(kept <= read);
    assert!(kept > 0);

    let resumed = run_evaluation_ctl(
        &cfg,
        &GridControl {
            journal: Some(journal),
            ..Default::default()
        },
    );
    assert!(resumed.cell_errors().is_empty());
    for (f, r) in full.raw_grids.iter().zip(&resumed.raw_grids) {
        assert_eq!(
            f.raw,
            r.raw,
            "{} / {}: resume over a compacted journal must be identical",
            f.econ,
            f.set.label()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
