//! End-to-end coverage of the multi-machine grid transport: a supervised
//! run must produce byte-identical results whether workers are local
//! child processes (pipes), remote `serve-worker` agents (TCP), or a mix;
//! a seed-pure flake schedule (`CCS_FLAKY_TRANSPORT`) that drops, tears
//! and duplicates frames must heal through redial + shard-journal resume
//! without changing a byte; a grid whose remotes are all unreachable must
//! degrade to in-process execution with a warning and exit 0; and the
//! supervisor must join every reader thread it spawned, on clean shutdown
//! and on worker death alike.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccs_transport_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `utility_risk summary` invocation on the small quick grid, scrubbed
/// of every chaos-drill environment variable.
fn summary_cmd(out: &std::path::Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_utility_risk"));
    cmd.args([
        "summary",
        "--quick",
        "--jobs",
        "25",
        "--quiet",
        "--out",
        out.to_str().unwrap(),
    ]);
    cmd.env_remove("CCS_FAIL_CELL")
        .env_remove("CCS_STALL_CELL")
        .env_remove("CCS_KILL_WORKER")
        .env_remove("CCS_FLAKY_TRANSPORT");
    cmd
}

/// The store's logical content as a deterministic projection (same column
/// set as `integration_supervisor`): everything that must be invariant
/// across transports and flake schedules, sorted by digest.
fn store_projection(out: &std::path::Path) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_utility_risk"));
    cmd.args([
        "query",
        "--store",
        out.join("results_store.json").to_str().unwrap(),
        "--select",
        "econ,set,scenario,value,policy,norm_score,risk_score,events,digest",
        "--sort-by",
        "digest",
    ]);
    let output = cmd.output().expect("spawn utility_risk query");
    assert!(
        output.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("query output is UTF-8")
}

/// Spawns a `serve-worker` agent on an ephemeral port and parses the
/// machine-readable readiness line for the actual address.
fn spawn_agent() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(["serve-worker", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .env_remove("CCS_FAIL_CELL")
        .env_remove("CCS_STALL_CELL")
        .env_remove("CCS_KILL_WORKER")
        .env_remove("CCS_FLAKY_TRANSPORT")
        .spawn()
        .expect("spawn serve-worker");
    let stdout = child.stdout.take().expect("agent stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read readiness line");
    let addr = line
        .trim()
        .strip_prefix("serve-worker listening ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {line:?}"))
        .to_string();
    (child, addr)
}

/// Reaps an agent (killing it if the supervisor's Shutdown never landed)
/// and returns its captured stderr.
fn finish_agent(mut child: Child) -> String {
    let _ = child.kill();
    let output = child.wait_with_output().expect("reap serve-worker");
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Tentpole acceptance: the same grid over pipe workers, a TCP remote,
/// and a mixed local+remote fleet produces byte-identical stdout and
/// byte-identical logical store projections.
#[test]
fn tcp_and_mixed_transports_match_pipe_results() {
    let dir = temp_dir("matrix");
    let out_pipe = dir.join("pipe");
    let out_tcp = dir.join("tcp");
    let out_mixed = dir.join("mixed");

    let pipe = summary_cmd(&out_pipe)
        .args(["--workers", "2", "--heartbeat-ms", "60000"])
        .output()
        .expect("spawn pipe run");
    assert!(
        pipe.status.success(),
        "{}",
        String::from_utf8_lossy(&pipe.stderr)
    );

    let (agent_a, addr_a) = spawn_agent();
    let tcp = summary_cmd(&out_tcp)
        .args(["--remote", &addr_a, "--heartbeat-ms", "60000"])
        .output()
        .expect("spawn tcp run");
    let agent_a_err = finish_agent(agent_a);
    assert!(
        tcp.status.success(),
        "tcp run failed: {}\nagent stderr: {agent_a_err}",
        String::from_utf8_lossy(&tcp.stderr)
    );

    let (agent_b, addr_b) = spawn_agent();
    let mixed = summary_cmd(&out_mixed)
        .args([
            "--workers",
            "1",
            "--remote",
            &addr_b,
            "--heartbeat-ms",
            "60000",
        ])
        .output()
        .expect("spawn mixed run");
    let agent_b_err = finish_agent(agent_b);
    assert!(
        mixed.status.success(),
        "mixed run failed: {}\nagent stderr: {agent_b_err}",
        String::from_utf8_lossy(&mixed.stderr)
    );

    let stdout_pipe = String::from_utf8_lossy(&pipe.stdout).to_string();
    assert_eq!(
        stdout_pipe,
        String::from_utf8_lossy(&tcp.stdout),
        "TCP-remote stdout must match the pipe run"
    );
    assert_eq!(
        stdout_pipe,
        String::from_utf8_lossy(&mixed.stdout),
        "mixed-fleet stdout must match the pipe run"
    );
    let proj = store_projection(&out_pipe);
    assert_eq!(
        proj,
        store_projection(&out_tcp),
        "TCP-remote store projection must match the pipe run"
    );
    assert_eq!(
        proj,
        store_projection(&out_mixed),
        "mixed-fleet store projection must match the pipe run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flake drill: a seed-pure fault schedule tears, drops and duplicates
/// frames on the supervisor↔remote link. Every disconnect must heal
/// through redial + shard-journal resume — the agent logs the dropped
/// sessions — and the merged report stays byte-identical to an
/// undisturbed pipe run, exit 0.
#[test]
fn flaky_tcp_remote_redials_and_resumes_to_identical_results() {
    let dir = temp_dir("flaky");
    let out_clean = dir.join("clean");
    let out_flaky = dir.join("flaky");
    let journal = dir.join("journal.jsonl");

    let clean = summary_cmd(&out_clean)
        .args(["--workers", "2", "--heartbeat-ms", "60000"])
        .output()
        .expect("spawn clean run");
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let (agent, addr) = spawn_agent();
    let flaky = summary_cmd(&out_flaky)
        .args(["--remote", &addr, "--heartbeat-ms", "60000"])
        .args(["--retries", "50", "--backoff-ms", "5"])
        .args(["--resume", journal.to_str().unwrap()])
        .env("CCS_FLAKY_TRANSPORT", "7:10")
        .output()
        .expect("spawn flaky run");
    let agent_err = finish_agent(agent);
    assert_eq!(
        flaky.status.code(),
        Some(0),
        "flaky run must heal to exit 0: {}\nagent stderr: {agent_err}",
        String::from_utf8_lossy(&flaky.stderr)
    );
    // At a 10% flake rate over ~400 frames the schedule is guaranteed to
    // kill the connection at least once; every drop shows up in the agent
    // log as a session that ended short of Shutdown.
    assert!(
        agent_err.contains("awaiting reconnect"),
        "the drill must actually drop and redial at least one session: {agent_err}"
    );
    assert_eq!(
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&flaky.stdout),
        "flake-drill stdout must be byte-identical to the undisturbed run"
    );
    assert_eq!(
        store_projection(&out_clean),
        store_projection(&out_flaky),
        "flake-drill store projection must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Degradation: a purely remote grid whose remotes never answer must not
/// fail the sweep — after quarantining every remote the supervisor runs
/// the remaining cells in-process, warns on stderr, and exits 0 with
/// results byte-identical to a plain in-process run.
#[test]
fn dead_remotes_degrade_to_in_process_with_warning() {
    let dir = temp_dir("degrade");
    let out_plain = dir.join("plain");
    let out_degraded = dir.join("degraded");

    let plain = summary_cmd(&out_plain).output().expect("spawn plain run");
    assert!(
        plain.status.success(),
        "{}",
        String::from_utf8_lossy(&plain.stderr)
    );

    // Bind-then-drop guarantees a port with no listener.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let degraded = summary_cmd(&out_degraded)
        .args(["--remote", &dead_addr, "--heartbeat-ms", "60000"])
        .args(["--retries", "2", "--backoff-ms", "5"])
        .args(["--connect-timeout-ms", "250"])
        .output()
        .expect("spawn degraded run");
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert_eq!(
        degraded.status.code(),
        Some(0),
        "all-remotes-dead must degrade, not fail: {stderr}"
    );
    assert!(
        stderr.contains("in-process"),
        "degradation must warn on stderr (even under --quiet): {stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&degraded.stdout),
        "degraded stdout must be byte-identical to the in-process run"
    );
    assert_eq!(
        store_projection(&out_plain),
        store_projection(&out_degraded),
        "degraded store projection must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Config validation: malformed transport flags exit 2 with an error
/// naming the offending flag, before any simulation starts.
#[test]
fn invalid_transport_flags_exit_2_naming_the_flag() {
    let cases: &[(&[&str], &str)] = &[
        (&["--remote", "no-port"], "--remote"),
        (&["--remote", ":9000"], "--remote"),
        (&["--remote", "host:notaport"], "--remote"),
        (&["--remote", "host:0"], "--remote"),
        (
            &["--workers", "1", "--connect-timeout-ms", "0"],
            "--connect-timeout-ms",
        ),
        (&["--connect-timeout-ms", "100"], "--connect-timeout-ms"),
    ];
    for (flags, flag) in cases {
        let output = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
            .args(["summary", "--quick", "--quiet"])
            .args(*flags)
            .output()
            .expect("spawn utility_risk");
        assert_eq!(
            output.status.code(),
            Some(2),
            "{flags:?} must exit 2: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(flag),
            "{flags:?} error must name {flag}: {stderr}"
        );
    }
}

/// Drop-order regression: after a supervised run returns — cleanly or
/// through a worker killed mid-shard — every per-worker reader thread the
/// supervisor spawned must have been joined, not leaked.
#[test]
fn supervised_run_joins_reader_threads_on_shutdown_and_death() {
    use ccs_economy::EconomicModel;
    use ccs_experiments::grid::{run_grid_with_base_ctl, ExperimentConfig, GridControl};
    use ccs_experiments::scenario::EstimateSet;
    use ccs_experiments::supervisor::{live_reader_threads, SupervisorConfig};

    let cfg = ExperimentConfig::quick().with_jobs(25);
    let ctl = GridControl {
        supervisor: Some(SupervisorConfig {
            workers: 2,
            heartbeat_ms: 60_000,
            worker_bin: Some(env!("CARGO_BIN_EXE_utility_risk").into()),
            ..SupervisorConfig::default()
        }),
        ..GridControl::default()
    };

    let g = run_grid_with_base_ctl(
        EconomicModel::CommodityMarket,
        EstimateSet::A,
        &cfg,
        &[],
        &ctl,
    );
    assert_eq!(
        live_reader_threads(),
        0,
        "clean shutdown must join every reader thread"
    );
    assert_eq!(g.worker_transports, vec!["pipe".to_string(); 2]);

    // Kill drill: worker 1 aborts after three cells; the survivor steals
    // the shard. The dead worker's reader must be joined at death, the
    // survivor's at shutdown.
    std::env::set_var("CCS_KILL_WORKER", "1:3");
    let killed = run_grid_with_base_ctl(
        EconomicModel::CommodityMarket,
        EstimateSet::A,
        &cfg,
        &[],
        &ctl,
    );
    std::env::remove_var("CCS_KILL_WORKER");
    assert_eq!(
        live_reader_threads(),
        0,
        "worker death must join the dead worker's reader thread"
    );
    assert!(killed.worker_transports.iter().all(|t| t == "pipe"));
}
