//! Cross-crate integration tests for the streaming-analytics pipeline:
//! the live risk board must agree with the batch risk analysis at end of
//! run, per-run streaming statistics must agree with the batch metric
//! post-pass, and the columnar result store must answer queries over a
//! finished grid without touching any other artifact.

use ccs_chaos::{ChaosCase, SoakFinding, SoakReport};
use ccs_economy::EconomicModel;
use ccs_experiments::{
    analyze_with, policies_for, run_evaluation, run_grid_with_base_ctl_observed, EstimateSet,
    ExperimentConfig, GridControl, LiveRiskBoard, Query, ResultStore, Scenario, STORE_FILE,
};
use ccs_risk::WaitNormalization;
use ccs_simsvc::{simulate, simulate_observed, LiveRunStats, RunConfig};
use ccs_workload::{apply_scenario, ScenarioTransform, SdscSp2Model};

fn quick_cfg() -> ExperimentConfig {
    ExperimentConfig {
        threads: 2,
        ..ExperimentConfig::quick().with_jobs(40)
    }
}

/// The tentpole contract: after a full grid, the live board's streaming
/// Welford accumulators reproduce the batch separate risk analysis
/// (Eqs. 5–6 over normalized objectives) to within 1e-9 — the streaming
/// path observes the exact rows the batch path consumes.
#[test]
fn live_board_final_measures_equal_batch_analysis() {
    let cfg = quick_cfg();
    let econ = EconomicModel::CommodityMarket;
    let set = EstimateSet::B;
    let scheme = WaitNormalization::default();
    let base = cfg.trace.generate(cfg.seed);
    let board = LiveRiskBoard::new(
        policies_for(econ)
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
        scheme,
    );
    let grid =
        run_grid_with_base_ctl_observed(econ, set, &cfg, &base, &GridControl::default(), &board);

    let streaming = board.final_measures();
    let batch = analyze_with(&grid, scheme);
    assert_eq!(board.snapshot().points, Scenario::ALL.len() * 6);
    for (s, per_policy) in batch.separate.iter().enumerate() {
        for (p, measures) in per_policy.iter().enumerate() {
            for (o, m) in measures.iter().enumerate() {
                let live = &streaming[s][p][o];
                assert!(
                    (live.performance - m.performance).abs() < 1e-9,
                    "μ diverged at scenario {s} policy {p} objective {o}: \
                     streaming {} vs batch {}",
                    live.performance,
                    m.performance
                );
                // Compare σ² (the Eq. 6 quantity before the square root):
                // the batch path's naive E[x²]−E[x]² cancels catastrophically
                // on near-constant data, leaving ~1e-9 of spurious σ where
                // Welford correctly reports 0, so σ itself is only as good
                // as the *batch* rounding allows.
                let live_var = live.volatility * live.volatility;
                let batch_var = m.volatility * m.volatility;
                assert!(
                    (live_var - batch_var).abs() < 1e-9,
                    "σ² diverged at scenario {s} policy {p} objective {o}: \
                     streaming {} vs batch {}",
                    live.volatility,
                    m.volatility
                );
            }
        }
    }
}

/// Streaming per-run statistics equal the batch post-pass exactly, and an
/// attached observer cannot change what the run produces.
#[test]
fn streaming_run_stats_match_batch_and_leave_results_untouched() {
    let base = SdscSp2Model {
        jobs: 150,
        ..SdscSp2Model::small()
    }
    .generate(7);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 7);
    for econ in EconomicModel::ALL {
        let cfg = RunConfig { nodes: 64, econ };
        for kind in ccs_experiments::policies_for(econ) {
            let plain = simulate(&jobs, kind, &cfg);
            let mut live = LiveRunStats::new(&jobs, &cfg);
            let (observed, _) = simulate_observed(&jobs, kind, &cfg, None, &mut live);
            assert_eq!(
                plain.metrics,
                observed.metrics,
                "{econ:?}/{}: observer changed the run",
                kind.name()
            );
            assert_eq!(
                live.metrics(),
                &observed.metrics,
                "{econ:?}/{}: streaming metrics diverged from batch collect",
                kind.name()
            );
        }
    }
}

/// The store answers the figure-level question "which policy is riskiest
/// where?" over a finished evaluation — with row counts, filters, and
/// group sizes all consistent — and round-trips through disk.
#[test]
fn store_round_trips_and_answers_queries() {
    let cfg = quick_cfg();
    let ev = run_evaluation(&cfg);
    let store = ResultStore::from_evaluation(&ev, &cfg);
    let cells = Scenario::ALL.len() * 6 * 5;
    assert_eq!(store.len(), cells * 4, "one row per cell per grid");

    let dir = std::env::temp_dir().join("ccs_integration_store");
    let _ = std::fs::remove_dir_all(&dir);
    let path = store.save(&dir).unwrap();
    assert_eq!(path.file_name().unwrap(), STORE_FILE);
    let loaded = ResultStore::load(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Filter down to one (econ, set, policy) slice.
    let q = Query {
        econ: Some(EconomicModel::BidBased),
        set: Some(EstimateSet::B),
        policy: Some("Libra".to_string()),
        ..Default::default()
    };
    assert_eq!(
        loaded.query(&q).unwrap().rows.len(),
        Scenario::ALL.len() * 6
    );

    // Summarize reproduces the separate-analysis group shape: one group
    // per scenario × policy, each over the six sweep values.
    let q = Query {
        econ: Some(EconomicModel::CommodityMarket),
        set: Some(EstimateSet::A),
        summarize: true,
        ..Default::default()
    };
    let res = loaded.query(&q).unwrap();
    assert_eq!(res.rows.len(), Scenario::ALL.len() * 5);
    let n_col = res.header.iter().position(|h| h == "norm_score_n").unwrap();
    assert!(res.rows.iter().all(|r| r[n_col] == "6"));

    // Sorting by risk_score descending is monotone.
    let q = Query {
        select: vec!["risk_score".into()],
        sort_by: Some("risk_score".into()),
        descending: true,
        ..Default::default()
    };
    let scores: Vec<f64> = loaded
        .query(&q)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].parse().unwrap())
        .collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]));
}

/// Chaos-soak findings append as queryable chaos-source rows next to (and
/// filterable apart from) grid rows.
#[test]
fn chaos_findings_are_queryable_store_rows() {
    let cfg = quick_cfg();
    let ev = run_evaluation(&cfg);
    let mut store = ResultStore::from_evaluation(&ev, &cfg);
    let grid_rows = store.len();

    let case = ChaosCase::generate(99);
    let report = SoakReport {
        rounds: 2,
        clean: 1,
        events: 1234,
        findings: vec![SoakFinding {
            round: 1,
            signature: "violation:capacity_respected".to_string(),
            detail: "node over capacity".to_string(),
            case: case.clone(),
            minimized: case,
        }],
    };
    store.append_chaos(&report);
    assert_eq!(store.len(), grid_rows + 1);

    let chaos_only = Query {
        source: Some(ccs_experiments::store::SOURCE_CHAOS),
        select: vec!["scenario".into(), "risk_score".into(), "digest".into()],
        ..Default::default()
    };
    let res = store.query(&chaos_only).unwrap();
    assert_eq!(res.rows.len(), 1);
    assert!(res.rows[0][0].starts_with("chaos:"));
    assert_eq!(res.rows[0][1], "1.000000");
    assert_eq!(res.rows[0][2], "violation:capacity_respected");

    let grid_only = Query {
        source: Some(ccs_experiments::store::SOURCE_GRID),
        ..Default::default()
    };
    assert_eq!(store.query(&grid_only).unwrap().rows.len(), grid_rows);
}
