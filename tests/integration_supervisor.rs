//! End-to-end coverage of the fault-tolerant multi-process grid: the
//! supervised run must produce results byte-identical to a single-process
//! run regardless of worker count, survive a worker killed mid-shard
//! (`CCS_KILL_WORKER`), heal a supervisor restart via `--resume`, and
//! quarantine a poison cell as a typed error (exit 1) instead of aborting.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccs_supervisor_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `utility_risk summary` invocation on the small quick grid.
fn summary_cmd(out: &std::path::Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_utility_risk"));
    cmd.args([
        "summary",
        "--quick",
        "--jobs",
        "25",
        "--quiet",
        "--out",
        out.to_str().unwrap(),
    ]);
    cmd.env_remove("CCS_FAIL_CELL")
        .env_remove("CCS_STALL_CELL")
        .env_remove("CCS_KILL_WORKER");
    cmd
}

/// A supervised variant of [`summary_cmd`]. The long heartbeat deadline
/// keeps slow CI machines from tripping the watchdog.
fn supervised_cmd(out: &std::path::Path, workers: &str) -> Command {
    let mut cmd = summary_cmd(out);
    cmd.args(["--workers", workers, "--heartbeat-ms", "60000"]);
    cmd
}

/// The store's logical content as a deterministic projection: every column
/// that must be invariant across worker counts and kill schedules, sorted
/// by digest. Physical columns (secs, events_per_sec, worker) are
/// excluded — wall time depends on the machine and attribution on the
/// schedule.
fn store_projection(out: &std::path::Path) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_utility_risk"));
    cmd.args([
        "query",
        "--store",
        out.join("results_store.json").to_str().unwrap(),
        "--select",
        "econ,set,scenario,value,policy,norm_score,risk_score,events,digest",
        "--sort-by",
        "digest",
    ]);
    let output = cmd.output().expect("spawn utility_risk query");
    assert!(
        output.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("query output is UTF-8")
}

/// Tentpole acceptance: the same grid through 1 worker, 4 workers, and the
/// in-process path produces byte-identical stdout and byte-identical
/// logical store projections.
#[test]
fn worker_count_does_not_change_results() {
    let dir = temp_dir("counts");
    let out_inproc = dir.join("inproc");
    let out_w1 = dir.join("w1");
    let out_w4 = dir.join("w4");

    let inproc = summary_cmd(&out_inproc).output().expect("spawn in-process");
    assert!(
        inproc.status.success(),
        "{}",
        String::from_utf8_lossy(&inproc.stderr)
    );
    let w1 = supervised_cmd(&out_w1, "1")
        .output()
        .expect("spawn 1-worker");
    assert!(
        w1.status.success(),
        "{}",
        String::from_utf8_lossy(&w1.stderr)
    );
    let w4 = supervised_cmd(&out_w4, "4")
        .output()
        .expect("spawn 4-worker");
    assert!(
        w4.status.success(),
        "{}",
        String::from_utf8_lossy(&w4.stderr)
    );

    let stdout_inproc = String::from_utf8_lossy(&inproc.stdout).to_string();
    assert_eq!(
        stdout_inproc,
        String::from_utf8_lossy(&w1.stdout),
        "1-worker stdout must match the in-process run"
    );
    assert_eq!(
        stdout_inproc,
        String::from_utf8_lossy(&w4.stdout),
        "4-worker stdout must match the in-process run"
    );
    let proj = store_projection(&out_inproc);
    assert_eq!(
        proj,
        store_projection(&out_w1),
        "1-worker store projection must match in-process"
    );
    assert_eq!(
        proj,
        store_projection(&out_w4),
        "4-worker store projection must match in-process"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill drill: worker 2 of 2 aborts mid-shard after three cells
/// (`CCS_KILL_WORKER`). The supervisor must reassign the orphaned work,
/// finish the sweep with exit 0, and produce stdout byte-identical to an
/// undisturbed run.
#[test]
fn killed_worker_recovers_to_identical_results() {
    let dir = temp_dir("kill");
    let out_clean = dir.join("clean");
    let out_kill = dir.join("kill");

    let clean = supervised_cmd(&out_clean, "2")
        .output()
        .expect("spawn clean");
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let killed = supervised_cmd(&out_kill, "2")
        .env("CCS_KILL_WORKER", "2:3")
        .output()
        .expect("spawn kill drill");
    assert_eq!(
        killed.status.code(),
        Some(0),
        "supervisor must absorb the abort: {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&killed.stdout),
        "kill-drill stdout must be byte-identical to the undisturbed run"
    );
    assert_eq!(
        store_projection(&out_clean),
        store_projection(&out_kill),
        "kill-drill store projection must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Supervisor restart: a run truncated by `--cell-budget` leaves a journal
/// (shard journals merged into the primary); resuming with a *different*
/// worker count completes the grid to stdout byte-identical to an
/// uninterrupted run.
#[test]
fn supervisor_restart_resumes_to_identical_results() {
    let dir = temp_dir("restart");
    let out = dir.join("out");
    let journal = dir.join("journal.jsonl");

    let truncated = supervised_cmd(&out, "2")
        .args(["--cell-budget", "30"])
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("spawn truncated");
    assert!(
        truncated.status.success(),
        "{}",
        String::from_utf8_lossy(&truncated.stderr)
    );
    assert!(journal.exists(), "primary journal must exist after the run");

    let resumed = supervised_cmd(&out, "3")
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("spawn resumed");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    let out_fresh = dir.join("fresh");
    let fresh = summary_cmd(&out_fresh).output().expect("spawn fresh");
    assert!(fresh.status.success());
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&fresh.stdout),
        "resumed supervised run must be byte-identical to an uninterrupted one"
    );
    // Shard journals are merged into the primary and deleted.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".shard"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "shard journals left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Poison cell: a cell that panics on every attempt (`CCS_FAIL_CELL`) is
/// retried, then quarantined as a typed error — the sweep completes and
/// exits 1 rather than aborting — and a `--resume` rerun without the
/// injection heals to a clean, byte-identical report.
#[test]
fn poison_cell_quarantines_then_resume_heals() {
    let dir = temp_dir("poison");
    let out = dir.join("out");
    let journal = dir.join("journal.jsonl");

    let poisoned = supervised_cmd(&out, "2")
        .args(["--retries", "2", "--backoff-ms", "5"])
        .args(["--resume", journal.to_str().unwrap()])
        .env("CCS_FAIL_CELL", "0:1:SJF-BF")
        .output()
        .expect("spawn poisoned");
    assert_eq!(
        poisoned.status.code(),
        Some(1),
        "a quarantined cell must exit(1), not abort: {}",
        String::from_utf8_lossy(&poisoned.stderr)
    );
    let stderr = String::from_utf8_lossy(&poisoned.stderr);
    assert!(
        stderr.contains("was quarantined"),
        "stderr must name the quarantine: {stderr}"
    );
    let errors_json =
        std::fs::read_to_string(out.join("cell_errors.json")).expect("cell_errors.json written");
    assert!(
        errors_json.contains("Quarantine") && errors_json.contains("SJF-BF"),
        "error artifact must carry the typed quarantine: {errors_json}"
    );

    let healed = supervised_cmd(&out, "2")
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("spawn healed");
    assert_eq!(
        healed.status.code(),
        Some(0),
        "healed resume must exit 0: {}",
        String::from_utf8_lossy(&healed.stderr)
    );
    let out_fresh = dir.join("fresh");
    let fresh = summary_cmd(&out_fresh).output().expect("spawn fresh");
    assert!(fresh.status.success());
    assert_eq!(
        String::from_utf8_lossy(&healed.stdout),
        String::from_utf8_lossy(&fresh.stdout),
        "healed report must be byte-identical to an uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Config validation: malformed supervisor flags exit 2 with an error
/// naming the offending flag, before any simulation starts.
#[test]
fn invalid_supervisor_flags_exit_2_naming_the_flag() {
    let cases: &[(&[&str], &str)] = &[
        (&["--workers", "0"], "--workers"),
        (&["--workers", "999"], "--workers"),
        (&["--workers", "2", "--retries", "0"], "--retries"),
        (&["--workers", "2", "--backoff-ms", "0"], "--backoff-ms"),
        (&["--workers", "2", "--heartbeat-ms", "5"], "--heartbeat-ms"),
        (&["--retries", "3"], "--retries"),
        (&["--backoff-ms", "10"], "--backoff-ms"),
    ];
    for (flags, flag) in cases {
        let output = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
            .args(["summary", "--quick", "--quiet"])
            .args(*flags)
            .output()
            .expect("spawn utility_risk");
        assert_eq!(
            output.status.code(),
            Some(2),
            "{flags:?} must exit 2: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(flag),
            "{flags:?} error must name {flag}: {stderr}"
        );
    }
}
