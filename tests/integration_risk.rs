//! Integration of the risk-analysis crate with the experiment harness:
//! the paper's sample plot, tables, and renderers.

use ccs_experiments::tables;
use ccs_risk::report::{ascii_plot, extrema_table};
use ccs_risk::svg::{render, SvgOptions};
use ccs_risk::{rank, sample_figure1, RankBy};

#[test]
fn tables_ii_iii_iv_derive_from_the_same_sample() {
    let plot = sample_figure1();
    // Table II row count == Table III row count == Table IV row count.
    let t2_rows = tables::table2().lines().count() - 1;
    let t3_rows = tables::table3().lines().count() - 1;
    let t4_rows = tables::table4().lines().count() - 1;
    assert_eq!(t2_rows, plot.series.len());
    assert_eq!(t3_rows, plot.series.len());
    assert_eq!(t4_rows, plot.series.len());
}

#[test]
fn paper_rankings_reproduced() {
    let plot = sample_figure1();
    let by_perf: Vec<String> = rank(&plot, RankBy::BestPerformance)
        .into_iter()
        .map(|r| r.name)
        .collect();
    assert_eq!(by_perf, ["A", "B", "E", "G", "F", "C", "D", "H"]);
    let by_vol: Vec<String> = rank(&plot, RankBy::BestVolatility)
        .into_iter()
        .map(|r| r.name)
        .collect();
    // Paper Table IV.
    assert_eq!(by_vol, ["A", "E", "B", "F", "G", "C", "D", "H"]);
}

#[test]
fn renderers_agree_on_content() {
    let plot = sample_figure1();
    let svg = render(&plot, &SvgOptions::default());
    let ascii = ascii_plot(&plot, 60, 18);
    let table = extrema_table(&plot);
    let gnuplot = plot.to_gnuplot();
    for s in &plot.series {
        assert!(svg.contains(&s.name), "svg misses {}", s.name);
        assert!(table.contains(&s.name), "table misses {}", s.name);
        assert!(gnuplot.contains(&s.name), "gnuplot misses {}", s.name);
    }
    assert!(ascii.contains('A') && ascii.contains('H'));
}

#[test]
fn svg_axis_range_covers_all_points() {
    // Points beyond the default x_max (0.5) must still render (auto-extend).
    let plot = sample_figure1(); // volatilities reach 1.0
    let svg = render(&plot, &SvgOptions::default());
    // The axis labels should include a tick at or beyond 1.0.
    assert!(
        svg.contains(">0.84<")
            || svg.contains(">1.05<")
            || svg.contains(">0.8")
            || svg.contains(">1.0"),
        "x axis must extend beyond the default when data demands it"
    );
}

#[test]
fn all_six_tables_render_nonempty() {
    for (i, t) in [
        tables::table1(),
        tables::table2(),
        tables::table3(),
        tables::table4(),
        tables::table5(),
        tables::table6(),
    ]
    .iter()
    .enumerate()
    {
        assert!(t.lines().count() >= 4, "table {} too small", i + 1);
    }
}
