//! Reproducibility guarantees: the entire stack is a pure function of
//! (configuration, seed), across thread counts and repeated runs.

use ccs_economy::EconomicModel;
use ccs_experiments::{analyze, run_grid, EstimateSet, ExperimentConfig};
use ccs_workload::{apply_scenario, ScenarioTransform, SdscSp2Model};

#[test]
fn trace_generation_bit_identical() {
    let m = SdscSp2Model {
        jobs: 300,
        ..Default::default()
    };
    assert_eq!(m.generate(123), m.generate(123));
}

#[test]
fn scenario_annotation_bit_identical() {
    let base = SdscSp2Model {
        jobs: 100,
        ..Default::default()
    }
    .generate(5);
    let t = ScenarioTransform::default();
    let a = apply_scenario(&base, &t, 77);
    let b = apply_scenario(&base, &t, 77);
    assert_eq!(a, b);
}

#[test]
fn grid_identical_across_thread_counts() {
    let mk = |threads| ExperimentConfig {
        threads,
        ..ExperimentConfig::quick().with_jobs(40)
    };
    let g1 = run_grid(EconomicModel::BidBased, EstimateSet::B, &mk(1));
    let g3 = run_grid(EconomicModel::BidBased, EstimateSet::B, &mk(3));
    let g8 = run_grid(EconomicModel::BidBased, EstimateSet::B, &mk(8));
    assert_eq!(g1.raw, g3.raw);
    assert_eq!(g1.raw, g8.raw);
}

#[test]
fn analysis_is_deterministic() {
    let cfg = ExperimentConfig::quick().with_jobs(40);
    let a = analyze(&run_grid(
        EconomicModel::CommodityMarket,
        EstimateSet::A,
        &cfg,
    ));
    let b = analyze(&run_grid(
        EconomicModel::CommodityMarket,
        EstimateSet::A,
        &cfg,
    ));
    for (ra, rb) in a.separate.iter().zip(&b.separate) {
        for (pa, pb) in ra.iter().zip(rb) {
            for (ma, mb) in pa.iter().zip(pb) {
                assert_eq!(ma.performance, mb.performance);
                assert_eq!(ma.volatility, mb.volatility);
            }
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = ExperimentConfig {
        seed: 1,
        ..ExperimentConfig::quick().with_jobs(60)
    };
    let b = ExperimentConfig {
        seed: 2,
        ..ExperimentConfig::quick().with_jobs(60)
    };
    let ga = run_grid(EconomicModel::CommodityMarket, EstimateSet::A, &a);
    let gb = run_grid(EconomicModel::CommodityMarket, EstimateSet::A, &b);
    assert_ne!(ga.raw, gb.raw, "seed must matter");
}
