//! End-to-end coverage of the tracing layer: capture a traced run, write
//! the bundle, re-parse the JSONL trace and provenance manifest from disk,
//! and prove that Eqs. 1–4 recomputed from the trace agree with the
//! runner's metrics pipeline (the correctness oracle of the trace layer).

use ccs_experiments::trace_report::analyze;
use ccs_experiments::trace_run::{parse_jsonl, ProvenanceManifest};
use ccs_experiments::{capture_cell, write_bundle, ExperimentConfig, TraceCellSpec};
use ccs_telemetry::trace::{check_causal_order, TRACE_SCHEMA_VERSION};
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccs_trace_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The full artifact round trip: bundle → disk → parse → analyse →
/// cross-check. Eqs. 2 and 3 are ratios of integer counts and must match
/// exactly; Eqs. 1 and 4 sum floats in a different order than the runner
/// and must agree to within 1e-9 relative.
#[test]
fn trace_bundle_round_trips_and_matches_runner_metrics() {
    let cfg = ExperimentConfig::quick().with_jobs(60);
    let bundle = capture_cell(&TraceCellSpec::default(), &cfg);
    let dir = temp_dir("bundle");
    let files = write_bundle(&bundle, &dir).expect("write bundle");
    assert_eq!(files.len(), 3);

    let jsonl = std::fs::read_to_string(dir.join("trace.jsonl")).expect("trace.jsonl written");
    let records = parse_jsonl(&jsonl).expect("trace.jsonl parses");
    assert_eq!(records, bundle.trace.records);
    check_causal_order(&records).expect("trace is causally ordered");

    let manifest_text =
        std::fs::read_to_string(dir.join("manifest.json")).expect("manifest.json written");
    let manifest: ProvenanceManifest =
        serde_json::from_str(&manifest_text).expect("manifest parses");
    assert_eq!(manifest.trace_schema_version, TRACE_SCHEMA_VERSION);
    assert_eq!(manifest.seed, cfg.seed);
    assert_eq!(manifest.policy, "FCFS-BF");
    assert!(!manifest.crates.is_empty());

    let analysis = analyze(&records).expect("trace analyses");
    let m = &manifest.metrics;
    // Integer counts (and thus Eqs. 2/3) must match exactly.
    assert_eq!(analysis.submitted, m.submitted);
    assert_eq!(analysis.accepted, m.accepted);
    assert_eq!(analysis.fulfilled, m.fulfilled);
    let [wait, sla, rel, prof] = analysis.objectives();
    assert_eq!(sla, m.sla_pct, "Eq. 2 is exact given exact counts");
    assert_eq!(rel, m.reliability_pct, "Eq. 3 is exact given exact counts");
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(close(wait, m.wait), "Eq. 1: {wait} vs {}", m.wait);
    assert!(
        close(prof, m.profitability_pct),
        "Eq. 4: {prof} vs {}",
        m.profitability_pct
    );
    assert_eq!(analysis.crosscheck(m), Vec::<String>::new());

    // The Chrome trace must at least be valid JSON with a traceEvents array.
    let chrome =
        std::fs::read_to_string(dir.join("trace.chrome.json")).expect("trace.chrome.json written");
    let v = serde_json::parse_value_str(&chrome).expect("chrome trace parses as JSON");
    match v.get("traceEvents") {
        Some(serde::Value::Seq(events)) => assert!(!events.is_empty()),
        other => panic!("traceEvents array missing: {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The traced run must produce the same `RunResult` as the plain runner —
/// tracing is observation, never perturbation.
#[test]
fn tracing_does_not_perturb_results() {
    use ccs_simsvc::{simulate, RunConfig};
    use ccs_workload::apply_scenario;

    let cfg = ExperimentConfig::quick().with_jobs(60);
    let spec = TraceCellSpec::default();
    let bundle = capture_cell(&spec, &cfg);

    let base = cfg.trace.generate(cfg.seed);
    let value = spec.scenario.values()[spec.value_idx];
    let jobs = apply_scenario(&base, &spec.scenario.transform(spec.set, value), cfg.seed);
    let plain = simulate(
        &jobs,
        spec.policy,
        &RunConfig {
            nodes: cfg.nodes,
            econ: spec.econ,
        },
    );
    let a = serde_json::to_string(&plain).unwrap();
    let b = serde_json::to_string(&bundle.result).unwrap();
    assert_eq!(a, b, "traced and untraced runs must be byte-identical");
}

/// CLI smoke: `utility_risk trace` writes the bundle and exits 0 (the
/// cross-check is built into the command), then `trace_report` re-analyses
/// the same bundle from disk and also exits 0.
#[test]
fn trace_cli_round_trip() {
    let dir = temp_dir("cli");
    let out = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args([
            "trace",
            "--quick",
            "--jobs",
            "50",
            "--policy",
            "EDF-BF",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn utility_risk trace");
    assert!(
        out.status.success(),
        "utility_risk trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Eq.4 profitability"),
        "report missing: {stdout}"
    );
    assert!(stdout.contains("cross-check vs runner metrics: OK"));

    let report = Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .arg(dir.to_str().unwrap())
        .output()
        .expect("spawn trace_report");
    assert!(
        report.status.success(),
        "trace_report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let report_out = String::from_utf8_lossy(&report.stdout);
    assert!(report_out.contains("EDF-BF"), "manifest header missing");
    assert!(report_out.contains("cross-check vs runner metrics: OK"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `--quiet` must silence every stderr progress line while leaving stdout
/// (the data) untouched.
#[test]
fn quiet_flag_silences_stderr() {
    let dir = temp_dir("quiet");
    let out = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args([
            "trace",
            "--quick",
            "--jobs",
            "30",
            "--quiet",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn utility_risk trace --quiet");
    assert!(out.status.success());
    assert!(
        out.stderr.is_empty(),
        "--quiet must suppress stderr, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "--quiet must not eat stdout data");
    std::fs::remove_dir_all(&dir).ok();
}
