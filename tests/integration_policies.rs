//! Cross-crate behavioral checks of the seven policies on a realistic
//! (mid-sized) workload — the qualitative findings of paper Section 6.

use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_simsvc::{simulate, RunConfig, RunResult};
use ccs_workload::{apply_scenario, Job, ScenarioTransform, SdscSp2Model};

fn workload(inaccuracy_pct: f64) -> Vec<Job> {
    let base = SdscSp2Model {
        jobs: 600,
        ..Default::default()
    }
    .generate(42);
    apply_scenario(
        &base,
        &ScenarioTransform {
            inaccuracy_pct,
            ..Default::default()
        },
        42,
    )
}

fn run(jobs: &[Job], kind: PolicyKind, econ: EconomicModel) -> RunResult {
    simulate(jobs, kind, &RunConfig { nodes: 128, econ })
}

#[test]
fn libra_family_accepts_at_submission_with_zero_wait() {
    let jobs = workload(0.0);
    for kind in [PolicyKind::Libra, PolicyKind::LibraDollar] {
        let res = run(&jobs, kind, EconomicModel::CommodityMarket);
        assert_eq!(res.metrics.wait(), 0.0, "{kind}");
        assert!(res.metrics.accepted > 0, "{kind}");
    }
}

#[test]
fn backfilling_policies_queue_jobs() {
    let jobs = workload(0.0);
    for kind in [PolicyKind::FcfsBf, PolicyKind::SjfBf, PolicyKind::EdfBf] {
        let res = run(&jobs, kind, EconomicModel::CommodityMarket);
        assert!(
            res.metrics.wait() > 0.0,
            "{kind}: queued policies must show wait"
        );
    }
}

#[test]
fn sjf_waits_less_than_fcfs() {
    // SJF selects the shortest job first, so queued jobs wait the least
    // before being examined (paper Section 6.1).
    let jobs = workload(0.0);
    let sjf = run(&jobs, PolicyKind::SjfBf, EconomicModel::CommodityMarket);
    let fcfs = run(&jobs, PolicyKind::FcfsBf, EconomicModel::CommodityMarket);
    assert!(
        sjf.metrics.wait() < fcfs.metrics.wait(),
        "SJF {} vs FCFS {}",
        sjf.metrics.wait(),
        fcfs.metrics.wait()
    );
}

#[test]
fn backfilling_reliability_is_ideal_with_accurate_estimates() {
    // With accurate estimates, the generous admission control only starts
    // jobs that will meet their deadlines (paper Fig. 3e).
    let jobs = workload(0.0);
    for kind in [PolicyKind::FcfsBf, PolicyKind::SjfBf, PolicyKind::EdfBf] {
        let res = run(&jobs, kind, EconomicModel::CommodityMarket);
        assert!(
            res.metrics.reliability_pct() > 99.9,
            "{kind}: reliability {}",
            res.metrics.reliability_pct()
        );
    }
}

#[test]
fn inaccurate_estimates_degrade_libra_reliability() {
    // The paper's central Set B finding: non-preemptive admission control
    // that trusts runtime estimates suffers when they are wrong.
    let accurate = workload(0.0);
    let trace = workload(100.0);
    let rel_a = run(&accurate, PolicyKind::Libra, EconomicModel::BidBased)
        .metrics
        .reliability_pct();
    let rel_b = run(&trace, PolicyKind::Libra, EconomicModel::BidBased)
        .metrics
        .reliability_pct();
    assert!(
        rel_b < rel_a,
        "reliability should degrade: Set A {rel_a} vs Set B {rel_b}"
    );
}

#[test]
fn libra_dollar_earns_more_per_budget_than_libra() {
    // Libra+$'s adaptive pricing extracts more utility (paper Fig. 3g/h).
    let jobs = workload(0.0);
    let plain = run(&jobs, PolicyKind::Libra, EconomicModel::CommodityMarket);
    let dollar = run(
        &jobs,
        PolicyKind::LibraDollar,
        EconomicModel::CommodityMarket,
    );
    assert!(
        dollar.metrics.profitability_pct() > plain.metrics.profitability_pct(),
        "Libra+$ {} vs Libra {}",
        dollar.metrics.profitability_pct(),
        plain.metrics.profitability_pct()
    );
}

#[test]
fn libra_dollar_accepts_fewer_jobs() {
    // Higher prices under load discourage submissions (paper Section 6.1).
    let jobs = workload(0.0);
    let plain = run(&jobs, PolicyKind::Libra, EconomicModel::CommodityMarket);
    let dollar = run(
        &jobs,
        PolicyKind::LibraDollar,
        EconomicModel::CommodityMarket,
    );
    assert!(dollar.metrics.accepted < plain.metrics.accepted);
}

#[test]
fn first_reward_is_risk_averse() {
    // FirstReward accepts far fewer jobs than the deadline-driven policies
    // under unbounded penalties (paper Section 6.2).
    let jobs = workload(100.0);
    let fr = run(&jobs, PolicyKind::FirstReward, EconomicModel::BidBased);
    let edf = run(&jobs, PolicyKind::EdfBf, EconomicModel::BidBased);
    assert!(
        fr.metrics.accepted < edf.metrics.accepted / 2,
        "FirstReward {} vs EDF {}",
        fr.metrics.accepted,
        edf.metrics.accepted
    );
}

#[test]
fn riskd_matches_libra_with_accurate_estimates() {
    // In Set A the risk filter never triggers: identical decisions.
    let jobs = workload(0.0);
    let libra = run(&jobs, PolicyKind::Libra, EconomicModel::BidBased);
    let riskd = run(&jobs, PolicyKind::LibraRiskD, EconomicModel::BidBased);
    assert_eq!(libra.metrics.accepted, riskd.metrics.accepted);
    assert_eq!(libra.metrics.fulfilled, riskd.metrics.fulfilled);
}

#[test]
fn riskd_no_worse_than_libra_under_trace_estimates() {
    // LibraRiskD's purpose: handle inaccurate estimates at least as well as
    // Libra (paper Section 6.2 / ICPP 2006).
    let jobs = workload(100.0);
    let libra = run(&jobs, PolicyKind::Libra, EconomicModel::BidBased);
    let riskd = run(&jobs, PolicyKind::LibraRiskD, EconomicModel::BidBased);
    assert!(
        riskd.metrics.reliability_pct() >= libra.metrics.reliability_pct() - 1.0,
        "RiskD {} vs Libra {}",
        riskd.metrics.reliability_pct(),
        libra.metrics.reliability_pct()
    );
}

#[test]
fn commodity_never_charges_over_budget() {
    let jobs = workload(100.0);
    for kind in PolicyKind::COMMODITY {
        let res = run(&jobs, kind, EconomicModel::CommodityMarket);
        for (r, j) in res.records.iter().zip(&jobs) {
            assert!(
                r.utility <= j.budget + 1e-6,
                "{kind}: job {} charged {} over budget {}",
                j.id,
                r.utility,
                j.budget
            );
        }
    }
}

#[test]
fn bid_based_penalties_can_make_utility_negative() {
    // Under trace estimates some accepted jobs finish late; their utility
    // must reflect the linear penalty (possibly negative).
    let jobs = workload(100.0);
    let res = run(&jobs, PolicyKind::FcfsBf, EconomicModel::BidBased);
    let late: Vec<_> = res
        .records
        .iter()
        .filter(|r| r.accepted && !r.fulfilled)
        .collect();
    if !late.is_empty() {
        assert!(
            late.iter().any(|r| {
                let j = &jobs[r.id as usize];
                r.utility < j.budget
            }),
            "late jobs must earn less than their bids"
        );
    }
}

#[test]
fn heavier_load_cannot_increase_fulfilled_fraction() {
    // Compressing arrivals (lower arrival-delay factor) strictly raises
    // contention; the SLA percentage must not improve.
    let base = SdscSp2Model {
        jobs: 400,
        ..Default::default()
    }
    .generate(11);
    let slas: Vec<f64> = [0.02, 0.25, 1.0]
        .iter()
        .map(|&factor| {
            let jobs = apply_scenario(
                &base,
                &ScenarioTransform {
                    arrival_delay_factor: factor,
                    ..Default::default()
                },
                11,
            );
            run(&jobs, PolicyKind::EdfBf, EconomicModel::CommodityMarket)
                .metrics
                .sla_pct()
        })
        .collect();
    // Weak monotonicity (small wiggle from packing effects is tolerated).
    assert!(slas[0] <= slas[1] + 5.0, "{slas:?}");
    assert!(slas[1] <= slas[2] + 5.0, "{slas:?}");
    assert!(slas[0] < slas[2], "extreme load must hurt: {slas:?}");
}
