//! Integration: `perf diff` explains an injected regression.
//!
//! Synthesises two result stores that differ only in one way — the Libra
//! policy under the failure-rate scenario got slower, with the extra time
//! spent in PS share recomputation — and asserts the diff names exactly
//! that phase and that cell group. This is the explainability contract the
//! CI perf leg relies on: a tripped bench gate must translate into "which
//! phase, which cells".

use ccs_experiments::grid::CellCost;
use ccs_experiments::perf::{diff_stores, report, GroupBy};
use ccs_experiments::store::{ResultStore, Row, SOURCE_GRID};

const SCENARIOS: [&str; 3] = [
    "% of High Urgency Jobs",
    "Failure Rate (%)",
    "Deadline High Mean",
];
const POLICIES: [&str; 3] = ["FCFS-BF", "Libra", "Libra+R"];

/// A plausible profiled cost vector scaled by `f`.
fn base_cost(f: u64) -> CellCost {
    CellCost {
        // workload_gen, admission, dispatch, ps_recompute, fault, collect
        phase_ns: [
            40_000 * f,
            25_000 * f,
            380_000 * f,
            120_000 * f,
            30_000 * f,
            55_000 * f,
        ],
        peak_queue_depth: 12,
    }
}

/// Builds a full synthetic grid store; `mutate` may perturb each row's
/// (secs, cost) after the baseline values are filled in.
fn build_store(mut mutate: impl FnMut(&str, &str, &mut f64, &mut CellCost)) -> ResultStore {
    let mut store = ResultStore::new();
    for (s, scenario) in SCENARIOS.iter().enumerate() {
        for value_idx in 0..2u8 {
            for (p, policy) in POLICIES.iter().enumerate() {
                let mut secs = 0.1 + 0.01 * (s + p) as f64;
                let mut cost = base_cost(1);
                mutate(scenario, policy, &mut secs, &mut cost);
                store.push_row(Row {
                    source: SOURCE_GRID,
                    econ: 0,
                    set: 0,
                    scenario,
                    value_idx,
                    value: value_idx as f64 * 10.0,
                    policy,
                    seed: 42,
                    objectives: [1.5, 92.0, 99.0, 11.0],
                    norm_score: 0.55,
                    risk_score: 0.02,
                    secs,
                    events: (secs * 50_000.0) as u64,
                    digest: format!("{scenario}/{value_idx}/{policy}"),
                    cost,
                    worker: 0,
                    replicas: 1,
                    sigma: [0.0; 4],
                });
            }
        }
    }
    store
}

#[test]
fn perf_diff_names_injected_phase_and_cell_group() {
    let baseline = build_store(|_, _, _, _| {});
    // The regression: Libra under Failure Rate doubles in wall time, and
    // the growth is concentrated in ps_recompute (5×).
    let regressed = build_store(|scenario, policy, secs, cost| {
        if policy == "Libra" && scenario.contains("Failure Rate") {
            *secs *= 2.0;
            cost.phase_ns[3] *= 5;
        }
    });

    let text = diff_stores(&baseline, &regressed).unwrap();
    // 3 scenarios × 2 values × 3 policies, all matched.
    assert!(text.contains("18 matched cells"), "{text}");

    // The phase attribution: ps_recompute is the largest regression.
    let phase_line = text
        .lines()
        .find(|l| l.contains("[largest regression]"))
        .unwrap_or_else(|| panic!("no largest-regression line in:\n{text}"));
    assert!(
        phase_line.trim_start().starts_with("ps_recompute"),
        "wrong phase blamed:\n{text}"
    );

    // The cell attribution: Libra under Failure Rate, with the phase named
    // again inside the group.
    let group_line = text
        .lines()
        .find(|l| l.starts_with("worst cell group:"))
        .unwrap_or_else(|| panic!("no worst-group line in:\n{text}"));
    assert!(
        group_line.contains("Libra under Failure Rate (%)"),
        "{text}"
    );
    assert!(group_line.contains("(x2.00)"), "{text}");
    assert!(group_line.contains("ps_recompute"), "{text}");
    assert!(group_line.contains("+400.0%"), "{text}");
}

#[test]
fn perf_diff_is_clean_on_identical_stores() {
    let a = build_store(|_, _, _, _| {});
    let b = build_store(|_, _, _, _| {});
    let text = diff_stores(&a, &b).unwrap();
    assert!(
        text.contains("18 matched cells (0 only in baseline, 0 only in new)"),
        "{text}"
    );
    assert!(
        text.contains("total wall") && text.contains("+0.0%"),
        "{text}"
    );
    assert!(!text.contains("[largest regression]"), "{text}");
}

#[test]
fn perf_report_has_stable_shape() {
    let store = build_store(|_, _, _, _| {});
    let text = report(&store, 5, GroupBy::Scenario);
    assert!(text.starts_with("perf report: 18 grid cells"), "{text}");
    assert!(text.contains("profiling: on"), "{text}");
    assert!(text.contains("top 5 costliest cells:"), "{text}");
    // Header + 5 cells.
    let top: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.starts_with("top 5"))
        .take_while(|l| !l.starts_with("phase self-time"))
        .collect();
    assert_eq!(top.len(), 6, "{text}");
    // One breakdown line per scenario, each naming its dominant phase.
    let breakdown: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.starts_with("phase self-time by scenario"))
        .skip(1)
        .collect();
    assert_eq!(breakdown.len(), SCENARIOS.len(), "{text}");
    for line in breakdown {
        assert!(line.contains("dispatch"), "dominant phase missing: {line}");
    }
    // Grouping by policy gives one line per policy.
    let by_policy = report(&store, 1, GroupBy::Policy);
    let breakdown = by_policy
        .lines()
        .skip_while(|l| !l.starts_with("phase self-time by policy"))
        .skip(1)
        .count();
    assert_eq!(breakdown, POLICIES.len(), "{by_policy}");
}
