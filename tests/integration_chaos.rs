//! Chaos-engine integration: the tentpole acceptance tests for ccs-chaos.
//!
//! - Ledger-conservation and SLA-lifecycle invariants fuzzed across four
//!   policies with failure injection on (property tests, seed-determined).
//! - Every deliberately broken policy fixture is *caught* by the invariant
//!   engine, *shrunk* to a minimal schedule, and its JSON reproducer
//!   replays to the same violation.
//! - The degenerate grid cell — every node down at t = 0 and effectively
//!   never repaired — yields defined metrics instead of panicking.
//! - A short soak (the loop behind `utility_risk chaos`) is clean and a
//!   pure function of its seed.

use ccs_chaos::{run_soak, shrink, BrokenPolicyKind, CaseOutcome, ChaosCase, SoakConfig, Stressor};
use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_simsvc::{simulate_faulty, FaultConfig, RunBudget, RunConfig};
use ccs_workload::{Job, Urgency};
use proptest::prelude::*;

/// Event-count-only budget: fully deterministic (no wall clock), far above
/// anything a well-behaved case of ≤ 120 jobs can produce.
fn budget() -> RunBudget {
    RunBudget::events(5_000_000)
}

/// The four policies the issue names for invariant fuzzing: three
/// commodity-market schedulers and one bid-based, so both ledgers (charged
/// dollars and derived bid utility) are exercised.
const FUZZ_POLICIES: [(PolicyKind, EconomicModel); 4] = [
    (PolicyKind::FcfsBf, EconomicModel::CommodityMarket),
    (PolicyKind::SjfBf, EconomicModel::CommodityMarket),
    (PolicyKind::Libra, EconomicModel::CommodityMarket),
    (PolicyKind::FirstReward, EconomicModel::BidBased),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzzed workloads under fuzzed failure storms stay invariant-clean
    /// on every real policy. The failure process keeps per-node
    /// availability above ~76 % (the generator's own bound), so runs
    /// converge; any ledger, lifecycle, capacity, monotonicity, or
    /// objective-recomputation violation fails the property.
    #[test]
    fn invariants_hold_for_fuzzed_faulty_workloads(
        seed in 0u64..1_000_000,
        jobs in 30u32..90,
        nodes_extra in 0u32..24,
        mtbf_exp in 30u32..45,
        mttr_exp in 5u32..20,
        pol in 0usize..4,
    ) {
        let (policy, econ) = FUZZ_POLICIES[pol];
        let mtbf = 10f64.powf(mtbf_exp as f64 / 10.0); // 1e3 .. ~1e4.5 s
        let mttr = mtbf * 10f64.powf(-(mttr_exp as f64) / 10.0); // avail ≥ ~76 %
        let case = ChaosCase {
            seed,
            nodes: 4 + nodes_extra,
            jobs,
            econ,
            policy,
            stressors: vec![Stressor::FailureStorm {
                fault: FaultConfig::exponential(seed ^ 0x00FA_7A15, mtbf, mttr),
            }],
            broken: None,
        };
        match case.run(budget()) {
            CaseOutcome::Clean { .. } => {}
            other => prop_assert!(
                false,
                "policy {policy:?} violated an invariant: {}",
                other.detail()
            ),
        }
    }

    /// Shrinker property: whatever seed a broken-fixture case starts from,
    /// the minimised schedule still reproduces the *same* failure
    /// signature, and so does its JSON reproducer after a round-trip.
    #[test]
    fn shrunk_schedules_still_reproduce_their_violation(
        seed in 0u64..100_000,
        k in 0usize..3,
    ) {
        let kind = [
            BrokenPolicyKind::DropEveryThird,
            BrokenPolicyKind::TimeWarp,
            BrokenPolicyKind::DoubleAccept,
        ][k];
        let mut case = ChaosCase::generate(seed);
        case.broken = Some(kind);
        let sig = case
            .run(budget())
            .signature()
            .expect("a broken policy must produce a finding");
        let shrunk = shrink(&case, budget());
        prop_assert_eq!(&shrunk.signature, &sig);
        prop_assert!(shrunk.case.jobs <= case.jobs);
        prop_assert!(shrunk.case.nodes <= case.nodes);
        prop_assert!(shrunk.case.stressors.len() <= case.stressors.len());
        let replayed = ChaosCase::from_json(&shrunk.case.to_json())
            .expect("reproducer JSON parses");
        prop_assert_eq!(
            replayed.run(budget()).signature().as_deref(),
            Some(sig.as_str()),
            "minimised reproducer must replay to the same violation"
        );
    }
}

/// Acceptance: each deliberately broken policy is caught and attributed to
/// the right invariant family, then minimised without losing the bug.
#[test]
fn broken_policy_fixtures_are_caught_and_minimised() {
    let expected = [
        (BrokenPolicyKind::DropEveryThird, "violation:"),
        (BrokenPolicyKind::TimeWarp, "violation:"),
        (BrokenPolicyKind::DoubleAccept, "violation:sla_lifecycle"),
    ];
    for (kind, sig_prefix) in expected {
        let mut case = ChaosCase::generate(33);
        case.broken = Some(kind);
        let outcome = case.run(budget());
        let sig = outcome
            .signature()
            .unwrap_or_else(|| panic!("{kind:?} must be caught by the invariant engine"));
        assert!(
            sig.starts_with(sig_prefix),
            "{kind:?}: expected an invariant violation, got {sig} ({})",
            outcome.detail()
        );
        let shrunk = shrink(&case, budget());
        assert_eq!(
            shrunk.signature, sig,
            "{kind:?}: shrinking changed the failure"
        );
        assert!(
            shrunk.case.jobs < case.jobs || shrunk.case.stressors.len() < case.stressors.len(),
            "{kind:?}: shrinker removed nothing from {case:?}"
        );
    }
}

/// Satellite regression: a cell whose cluster is entirely down at t = 0
/// (tiny MTBF, astronomical MTTR — the nodes never again overlap in an up
/// state long enough to host a multi-processor job) must terminate with
/// defined metrics on every policy/economy pairing, not panic in the fault
/// drain. Before the drain-stagnation cap this spun to a 10-million-event
/// convergence assert.
#[test]
fn all_nodes_down_at_t0_yields_defined_metrics() {
    let combos: Vec<(PolicyKind, EconomicModel)> = PolicyKind::COMMODITY
        .iter()
        .map(|&p| (p, EconomicModel::CommodityMarket))
        .chain(
            PolicyKind::BID_BASED
                .iter()
                .map(|&p| (p, EconomicModel::BidBased)),
        )
        .collect();
    for (kind, econ) in combos {
        let jobs: Vec<Job> = (0..12)
            .map(|i| Job {
                id: i,
                submit: i as f64 * 100.0,
                runtime: 50.0,
                estimate: 50.0,
                procs: 1 + (i % 4), // multi-proc jobs are what used to wedge
                urgency: Urgency::Low,
                deadline: 10_000.0,
                budget: 100.0,
                penalty_rate: 1.0,
            })
            .collect();
        let cfg = RunConfig { nodes: 4, econ };
        let fault = FaultConfig::exponential(1, 1e-6, 1e15);
        let result = simulate_faulty(&jobs, kind, &cfg, &fault);
        assert_eq!(result.metrics.submitted, 12, "{kind:?}/{econ:?}");
        assert_eq!(
            result.metrics.fulfilled, 0,
            "{kind:?}/{econ:?}: nothing can be fulfilled on a dead cluster"
        );
        for v in result.metrics.objectives() {
            assert!(
                v.is_finite(),
                "{kind:?}/{econ:?}: objectives must stay defined, got {v}"
            );
        }
    }
}

/// A bounded soak over the real policies is clean, and rerunning it with
/// the same seed reproduces the identical report — the determinism the
/// `utility_risk chaos` CLI and the CI chaos leg rely on.
#[test]
fn short_soak_is_clean_and_seed_deterministic() {
    let cfg = SoakConfig {
        seed: 42,
        rounds: 6,
        budget: budget(),
    };
    let mut seen = 0u32;
    let a = run_soak(&cfg, |_, _, _| seen += 1);
    assert_eq!(seen, 6);
    assert_eq!(a.rounds, 6);
    assert!(
        a.is_clean(),
        "soak found violations on real policies: {:?}",
        a.findings
            .iter()
            .map(|f| (&f.signature, &f.detail))
            .collect::<Vec<_>>()
    );
    let b = run_soak(&cfg, |_, _, _| {});
    assert_eq!(a.clean, b.clean);
    assert_eq!(
        a.events, b.events,
        "soak must be a pure function of its seed"
    );
}
