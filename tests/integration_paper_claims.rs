//! Full-scale reproduction contract: the qualitative claims of the paper's
//! evaluation (Section 6) that EXPERIMENTS.md marks as reproduced, asserted
//! on the real 5000-job study.
//!
//! These tests run the complete grid (≈ 1 min each on one core), so they
//! are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test integration_paper_claims -- --ignored
//! ```

use ccs_economy::EconomicModel;
use ccs_experiments::{analyze, run_grid, EstimateSet, ExperimentConfig};
use ccs_risk::{integrated_equal, Objective};

fn mean_all4(a: &ccs_experiments::GridAnalysis, policy: &str) -> f64 {
    let p = a.policy_names.iter().position(|n| n == policy).unwrap();
    a.separate
        .iter()
        .map(|row| integrated_equal(&row[p]).performance)
        .sum::<f64>()
        / a.separate.len() as f64
}

#[test]
#[ignore = "full 5000-job study (~1 min); run with --ignored"]
fn commodity_market_claims() {
    let cfg = ExperimentConfig::default();
    let a = analyze(&run_grid(
        EconomicModel::CommodityMarket,
        EstimateSet::A,
        &cfg,
    ));
    let b = analyze(&run_grid(
        EconomicModel::CommodityMarket,
        EstimateSet::B,
        &cfg,
    ));

    // Fig 3a/b: the Libra family examines jobs at submission — ideal wait.
    for g in [&a, &b] {
        assert_eq!(g.mean_performance("Libra", Objective::Wait), 1.0);
        assert_eq!(g.mean_performance("Libra+$", Objective::Wait), 1.0);
        // SJF-BF is the best backfilling policy on wait.
        let sjf = g.mean_performance("SJF-BF", Objective::Wait);
        assert!(sjf > g.mean_performance("FCFS-BF", Objective::Wait));
    }

    // Fig 3e/f: backfilling reliability is essentially ideal in both sets.
    for g in [&a, &b] {
        for p in ["FCFS-BF", "SJF-BF", "EDF-BF"] {
            assert!(
                g.mean_performance(p, Objective::Reliability) > 0.99,
                "{p}: {}",
                g.mean_performance(p, Objective::Reliability)
            );
        }
    }
    // ...while the Libra family loses reliability under trace estimates.
    assert!(
        b.mean_performance("Libra", Objective::Reliability)
            < a.mean_performance("Libra", Objective::Reliability) - 0.03
    );

    // Fig 3g/h: Libra+$'s enhanced pricing earns the most in both sets.
    for g in [&a, &b] {
        let dollar = g.mean_performance("Libra+$", Objective::Profitability);
        for p in ["FCFS-BF", "SJF-BF", "EDF-BF", "Libra"] {
            assert!(
                dollar > g.mean_performance(p, Objective::Profitability),
                "Libra+$ {dollar} vs {p}"
            );
        }
    }

    // Fig 3d: Libra+$ accepts/fulfils fewer than Libra; both drop from A to B.
    assert!(
        a.mean_performance("Libra+$", Objective::Sla) < a.mean_performance("Libra", Objective::Sla)
    );
    assert!(
        b.mean_performance("Libra", Objective::Sla) < a.mean_performance("Libra", Objective::Sla)
    );

    // Fig 5a: the Libra family tops the 4-objective integration in Set A,
    // with Libra+$'s best point the best overall.
    let best_backfill = ["FCFS-BF", "SJF-BF", "EDF-BF"]
        .iter()
        .map(|p| mean_all4(&a, p))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(mean_all4(&a, "Libra") > best_backfill);
    assert!(mean_all4(&a, "Libra+$") > best_backfill);

    // Fig 5b: Libra+$ loses its Set A advantage under trace estimates.
    assert!(mean_all4(&b, "Libra+$") < mean_all4(&a, "Libra+$") - 0.05);
}

#[test]
#[ignore = "full 5000-job study (~1 min); run with --ignored"]
fn bid_based_claims() {
    let cfg = ExperimentConfig::default();
    let a = analyze(&run_grid(EconomicModel::BidBased, EstimateSet::A, &cfg));
    let b = analyze(&run_grid(EconomicModel::BidBased, EstimateSet::B, &cfg));

    // Fig 6a/b: Libra and LibraRiskD ideal on wait; FirstReward next.
    for g in [&a, &b] {
        assert_eq!(g.mean_performance("Libra", Objective::Wait), 1.0);
        assert_eq!(g.mean_performance("LibraRiskD", Objective::Wait), 1.0);
        let fr = g.mean_performance("FirstReward", Objective::Wait);
        assert!(fr > 0.85, "FirstReward wait {fr}");
        assert!(fr > g.mean_performance("EDF-BF", Objective::Wait));
        assert!(fr > g.mean_performance("FCFS-BF", Objective::Wait));
    }

    // Fig 6c/d: FirstReward has by far the worst SLA performance
    // (risk-averse under unbounded penalties, no backfilling).
    for g in [&a, &b] {
        let fr = g.mean_performance("FirstReward", Objective::Sla);
        for p in ["FCFS-BF", "EDF-BF", "Libra", "LibraRiskD"] {
            assert!(fr < g.mean_performance(p, Objective::Sla), "{p}");
        }
    }

    // Set A: LibraRiskD behaves exactly like Libra (risk filter idle).
    let libra_a = mean_all4(&a, "Libra");
    let riskd_a = mean_all4(&a, "LibraRiskD");
    assert!((libra_a - riskd_a).abs() < 0.01, "{libra_a} vs {riskd_a}");

    // Fig 8: Libra/LibraRiskD share the best Set A integration; LibraRiskD
    // holds the best score in Set B (the paper's headline).
    for p in ["FCFS-BF", "EDF-BF", "FirstReward"] {
        assert!(libra_a > mean_all4(&a, p), "{p}");
    }
    let riskd_b = mean_all4(&b, "LibraRiskD");
    for p in ["FCFS-BF", "EDF-BF", "FirstReward", "Libra"] {
        assert!(
            riskd_b >= mean_all4(&b, p) - 1e-9,
            "LibraRiskD {riskd_b} vs {p} {}",
            mean_all4(&b, p)
        );
    }

    // Fig 6e/f: LibraRiskD's reliability is no worse than Libra's under
    // trace estimates (the whole point of the delay-risk filter).
    assert!(
        b.mean_performance("LibraRiskD", Objective::Reliability)
            >= b.mean_performance("Libra", Objective::Reliability) - 1e-9
    );

    // Fig 6g/h: FirstReward has the worst profitability performance.
    for g in [&a, &b] {
        let fr = g.mean_performance("FirstReward", Objective::Profitability);
        for p in ["EDF-BF", "Libra", "LibraRiskD"] {
            assert!(fr < g.mean_performance(p, Objective::Profitability), "{p}");
        }
    }
}
