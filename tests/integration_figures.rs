//! Figure-reproduction integration: every paper figure can be assembled,
//! printed, and written to disk from a quick evaluation.

use ccs_experiments::figures::{figure1, figure2_curves, print_figure, write_figure};
use ccs_experiments::{build_figure, run_evaluation, ExperimentConfig};

#[test]
fn figure_builder_covers_fig1_and_fig3_through_fig8() {
    let cfg = ExperimentConfig::quick().with_jobs(40);
    for (id, subplots) in [
        ("fig1", 1),
        ("fig3", 8),
        ("fig4", 8),
        ("fig5", 2),
        ("fig6", 8),
        ("fig7", 8),
        ("fig8", 2),
    ] {
        let fig = build_figure(id, &cfg);
        assert_eq!(fig.id, id);
        assert_eq!(fig.plots.len(), subplots, "{id}");
        let text = print_figure(&fig);
        assert!(text.contains(&format!("=== {id}")), "{id}");
    }
}

#[test]
fn full_quick_evaluation_produces_all_figures() {
    let cfg = ExperimentConfig::quick().with_jobs(40);
    let ev = run_evaluation(&cfg);
    let figs = ev.paper_figures();
    assert_eq!(figs.len(), 7);
    // Sub-plot titles alternate Set A / Set B in paper order for fig3.
    let fig3 = &figs[1];
    assert!(fig3.plots[0].title.starts_with("Set A"));
    assert!(fig3.plots[1].title.starts_with("Set B"));
    assert!(fig3.plots[0].title.contains("wait"));
    assert!(fig3.plots[6].title.contains("profitability"));
}

#[test]
fn figure_artifacts_written_to_disk() {
    let dir = std::env::temp_dir().join("ccs_integration_figs");
    let _ = std::fs::remove_dir_all(&dir);
    let files = write_figure(&dir, &figure1()).unwrap();
    for f in &files {
        assert!(f.exists());
        assert!(std::fs::metadata(f).unwrap().len() > 0);
    }
    // fig1a.dat + fig1a.svg + fig1a.gp + fig1.txt
    assert_eq!(files.len(), 4);
    let svg = std::fs::read_to_string(dir.join("fig1a.svg")).unwrap();
    assert!(svg.starts_with("<svg"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn figure2_penalty_function_shape() {
    let curves = figure2_curves();
    for (label, curve) in &curves {
        // Utility is non-increasing in completion time.
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "{label}: utility increased");
        }
        // Flat region first (within deadline), then strictly decreasing.
        assert_eq!(curve[0].1, curve[1].1, "{label}: starts flat at the budget");
        let n = curve.len();
        assert!(
            curve[n - 1].1 < curve[n - 2].1,
            "{label}: decaying at the end"
        );
    }
}

#[test]
fn quick_bid_evaluation_shows_paper_shape() {
    // Even at 40 jobs the structural anchors hold: the Libra family has
    // ideal wait performance, and every point is inside the unit box.
    let cfg = ExperimentConfig::quick().with_jobs(40);
    let fig6 = build_figure("fig6", &cfg);
    let wait_a = &fig6.plots[0];
    for series in &wait_a.series {
        if series.name == "Libra" || series.name == "LibraRiskD" {
            for p in &series.points {
                assert!((p.performance - 1.0).abs() < 1e-9, "{}", series.name);
                assert!(p.volatility.abs() < 1e-9);
            }
        }
        for p in &series.points {
            assert!((0.0..=1.0).contains(&p.performance));
            assert!((0.0..=0.5 + 1e-9).contains(&p.volatility));
        }
    }
}
