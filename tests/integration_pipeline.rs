//! End-to-end pipeline: synthetic trace → scenario transform → service
//! simulation → separate/integrated risk analysis → plots.

use ccs_economy::EconomicModel;
use ccs_experiments::{analyze, run_grid, EstimateSet, ExperimentConfig, Scenario};
use ccs_risk::{Objective, RankBy};
use ccs_simsvc::{simulate, RunConfig};
use ccs_workload::{apply_scenario, ScenarioTransform, SdscSp2Model, WorkloadSummary};

#[test]
fn trace_to_metrics_to_risk() {
    let base = SdscSp2Model {
        jobs: 120,
        ..Default::default()
    }
    .generate(7);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 7);
    let summary = WorkloadSummary::compute(&jobs, 128);
    assert_eq!(summary.jobs, 120);
    assert!(summary.offered_load > 0.0);

    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::BidBased,
    };
    let res = simulate(&jobs, ccs_policies::PolicyKind::Libra, &cfg);
    let [wait, sla, rel, prof] = res.metrics.objectives();
    assert!(wait >= 0.0 && sla <= 100.0 && rel <= 100.0 && prof <= 100.0);

    // One normalized scenario sweep through the risk pipeline.
    let raw = [sla, 50.0, 75.0];
    let norm = ccs_risk::normalize::normalize(Objective::Sla, &raw);
    let sep = ccs_risk::separate(&norm);
    assert!((0.0..=1.0).contains(&sep.performance));
}

#[test]
fn quick_grid_supports_all_figure_views() {
    let cfg = ExperimentConfig::quick().with_jobs(50);
    let grid = run_grid(EconomicModel::CommodityMarket, EstimateSet::A, &cfg);
    assert_eq!(grid.raw.len(), Scenario::ALL.len());
    let analysis = analyze(&grid);

    // Separate plot per objective, integrated over triples and all four.
    for obj in Objective::ALL {
        let plot = analysis.separate_plot(obj);
        assert_eq!(plot.series.len(), 5);
        assert!(plot.title.contains(obj.abbrev()));
    }
    for (_omitted, triple) in Objective::triples() {
        let plot = analysis.integrated_plot(&triple);
        assert_eq!(plot.series[0].points.len(), 13);
        // Rankings are computable on every integrated plot.
        let rows = ccs_risk::rank(&plot, RankBy::BestPerformance);
        assert_eq!(rows.len(), 5);
    }
}

#[test]
fn swf_export_reimport_preserves_simulation() {
    // Export the synthetic workload as SWF, re-import it, and verify the
    // simulation outcome is identical — the dual of trace portability.
    let base = SdscSp2Model {
        jobs: 80,
        ..Default::default()
    }
    .generate(3);
    let records: Vec<ccs_workload::swf::SwfRecord> = base
        .iter()
        .map(|b| ccs_workload::swf::SwfRecord {
            job_number: b.id as i64 + 1,
            submit: b.submit,
            wait: -1.0,
            runtime: b.runtime,
            used_procs: b.procs as i64,
            avg_cpu: -1.0,
            used_mem: -1.0,
            req_procs: b.procs as i64,
            req_time: b.trace_estimate,
            req_mem: -1.0,
            status: 1,
            uid: 1,
            gid: 1,
            exe: 1,
            queue: 1,
            partition: 1,
            preceding: -1,
            think_time: -1.0,
        })
        .collect();
    let text = ccs_workload::swf::write(&records);
    let reparsed = ccs_workload::swf::parse(&text).unwrap();
    let reimported = ccs_workload::swf::to_base_jobs(&reparsed, 128, None);
    assert_eq!(reimported.len(), base.len());

    let t = ScenarioTransform::default();
    let jobs_a = apply_scenario(&base, &t, 9);
    let jobs_b = apply_scenario(&reimported, &t, 9);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    let ra = simulate(&jobs_a, ccs_policies::PolicyKind::SjfBf, &cfg);
    let rb = simulate(&jobs_b, ccs_policies::PolicyKind::SjfBf, &cfg);
    assert_eq!(ra.metrics.fulfilled, rb.metrics.fulfilled);
    assert_eq!(ra.metrics.accepted, rb.metrics.accepted);
}
