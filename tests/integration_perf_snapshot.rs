//! Byte-identity snapshot of the quick-grid objectives.
//!
//! The perf work in the simulation core (allocation-free event loop,
//! incremental PS recompute, admission-profile caching, workload
//! memoisation) is only safe because it must not change a single output
//! byte. This test pins that contract: it hashes the raw `f64` bit
//! patterns of two full quick grids (one per economic model, both
//! estimate sets) against constants captured before the optimisation
//! landed. Any rounding, reordering, or RNG drift — however small —
//! changes the hash.

use ccs_economy::EconomicModel;
use ccs_experiments::grid::{run_grid, ExperimentConfig, RawGrid};
use ccs_experiments::scenario::EstimateSet;

/// FNV-1a over the raw bit patterns of every objective in the grid, in
/// deterministic (scenario, value, policy, objective) order.
fn grid_hash(g: &RawGrid) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for per_value in &g.raw {
        for per_policy in per_value {
            for cell in per_policy {
                for &obj in cell {
                    mix(obj.to_bits());
                }
            }
        }
    }
    h
}

fn quick_cfg() -> ExperimentConfig {
    ExperimentConfig {
        threads: 2,
        ..ExperimentConfig::quick().with_jobs(60)
    }
}

/// Captured from the pre-optimisation tree (seed 42, 60 jobs, 128 nodes).
/// If either constant changes, an optimisation altered simulation output
/// and must be reworked, not re-recorded.
const COMMODITY_A_HASH: u64 = 0x3435_67de_3d8c_a87e;
const BID_B_HASH: u64 = 0xf474_0ef8_0f16_9de3;

#[test]
fn commodity_set_a_quick_grid_is_byte_identical_to_pre_perf_snapshot() {
    let g = run_grid(EconomicModel::CommodityMarket, EstimateSet::A, &quick_cfg());
    assert!(g.errors.is_empty());
    let h = grid_hash(&g);
    assert_eq!(
        h, COMMODITY_A_HASH,
        "commodity/A quick grid drifted: got {h:#018x}"
    );
}

#[test]
fn bid_set_b_quick_grid_is_byte_identical_to_pre_perf_snapshot() {
    let g = run_grid(EconomicModel::BidBased, EstimateSet::B, &quick_cfg());
    assert!(g.errors.is_empty());
    let h = grid_hash(&g);
    assert_eq!(h, BID_B_HASH, "bid/B quick grid drifted: got {h:#018x}");
}
