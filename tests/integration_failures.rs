//! End-to-end coverage of the crash-safe, resumable experiment grid: a run
//! killed partway (cell budget) resumes from its journal to results
//! byte-identical to an uninterrupted run, and a panicking cell is confined
//! to a reported `CellError` (nonzero exit) instead of aborting the study.

use ccs_experiments::{run_evaluation, run_evaluation_ctl, ExperimentConfig, GridControl};
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccs_failures_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig::quick().with_jobs(25)
}

/// Satellite 4, library level: truncate a full evaluation after a cell
/// budget, then resume from the journal — the merged results must be
/// byte-identical to an uninterrupted evaluation (same floats, bit for
/// bit), and the resumed run must only have paid for the missing cells.
#[test]
fn budget_truncated_evaluation_resumes_to_identical_results() {
    let dir = temp_dir("resume");
    let journal = dir.join("journal.jsonl");
    let cfg = small_cfg();

    let full = run_evaluation(&cfg);

    // Interrupted run: only 40 cells per grid actually execute; the rest
    // hold placeholders and are *not* journaled.
    let interrupted = run_evaluation_ctl(
        &cfg,
        &GridControl {
            journal: Some(journal.clone()),
            cell_budget: Some(40),
            ..Default::default()
        },
    );
    assert!(interrupted.cell_errors().is_empty());

    // Resumed run: journal hits for the 4 × 40 completed cells, live
    // simulation for the remainder.
    let resumed = run_evaluation_ctl(
        &cfg,
        &GridControl {
            journal: Some(journal.clone()),
            ..Default::default()
        },
    );
    assert!(resumed.cell_errors().is_empty());

    for (f, r) in full.raw_grids.iter().zip(&resumed.raw_grids) {
        assert_eq!(f.econ, r.econ);
        assert_eq!(f.set, r.set);
        assert_eq!(
            f.raw, r.raw,
            "{} / {}: resumed grid must be byte-identical to the uninterrupted one",
            f.econ, f.set
        );
    }

    // A second resume is a pure replay: every cell comes from the journal
    // and the numbers still match.
    let replay = run_evaluation_ctl(
        &cfg,
        &GridControl {
            journal: Some(journal),
            ..Default::default()
        },
    );
    for (f, r) in full.raw_grids.iter().zip(&replay.raw_grids) {
        assert_eq!(f.raw, r.raw);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 4 + tentpole acceptance, binary level: a deliberately
/// panicking policy cell (injected via `CCS_FAIL_CELL`) must not abort the
/// grid — the run completes, writes `cell_errors.json`, and exits nonzero;
/// a `--resume` rerun without the injection re-runs only the failed cells
/// and produces the same stdout as an untouched run.
#[test]
fn panicking_cell_reports_errors_and_resume_heals() {
    let dir = temp_dir("panic");
    let journal = dir.join("journal.jsonl");
    let out = dir.join("out");
    let args = |with_resume: bool| {
        let mut a = vec![
            "summary".to_string(),
            "--quick".into(),
            "--jobs".into(),
            "25".into(),
            "--quiet".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ];
        if with_resume {
            a.push("--resume".into());
            a.push(journal.to_str().unwrap().to_string());
        }
        a
    };

    // Run 1: one cell per grid panics. The process must finish the whole
    // sweep, report the errors, and exit nonzero.
    let poisoned = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(args(true))
        .env("CCS_FAIL_CELL", "0:1:SJF-BF")
        .output()
        .expect("spawn utility_risk");
    assert_eq!(
        poisoned.status.code(),
        Some(1),
        "a panicking cell must exit(1), not abort: {}",
        String::from_utf8_lossy(&poisoned.stderr)
    );
    let stderr = String::from_utf8_lossy(&poisoned.stderr);
    assert!(
        stderr.contains("panicked"),
        "stderr must name the panicking cell: {stderr}"
    );
    let errors_json =
        std::fs::read_to_string(out.join("cell_errors.json")).expect("cell_errors.json written");
    assert!(
        errors_json.contains("SJF-BF"),
        "error artifact names the policy: {errors_json}"
    );

    // Run 2: resume without the injection. Only the failed/missing cells
    // re-run; exit clean.
    let healed = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(args(true))
        .env_remove("CCS_FAIL_CELL")
        .output()
        .expect("spawn utility_risk");
    assert_eq!(
        healed.status.code(),
        Some(0),
        "healed resume must exit 0: {}",
        String::from_utf8_lossy(&healed.stderr)
    );
    // Run 3: fresh, uninterrupted run. Its stdout (the four per-policy
    // summary tables) must be byte-identical to the healed resume's.
    let fresh = Command::new(env!("CARGO_BIN_EXE_utility_risk"))
        .args(args(false))
        .env_remove("CCS_FAIL_CELL")
        .output()
        .expect("spawn utility_risk");
    assert_eq!(fresh.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&healed.stdout),
        String::from_utf8_lossy(&fresh.stdout),
        "resumed report must be byte-identical to an uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
