//! Integration of the extension features: a-priori risk analysis, ablation
//! studies, diurnal workloads, and run timelines.

use ccs_economy::EconomicModel;
use ccs_experiments::ablation;
use ccs_experiments::{analyze, run_grid, EstimateSet, ExperimentConfig};
use ccs_policies::PolicyKind;
use ccs_risk::apriori::{forecast, pareto_front, uniform_mix, weight_sensitivity};
use ccs_risk::{integrated_equal, RiskMeasure};
use ccs_simsvc::{simulate, simulate_with, RunConfig, Timeline};
use ccs_workload::{
    apply_diurnal, apply_scenario, DiurnalProfile, ScenarioTransform, SdscSp2Model,
};

#[test]
fn apriori_pipeline_over_measured_grid() {
    let cfg = ExperimentConfig::quick().with_jobs(50);
    let analysis = analyze(&run_grid(EconomicModel::BidBased, EstimateSet::B, &cfg));

    // Forecast each policy's 4-objective risk under a uniform future mix.
    let mut integrated: Vec<RiskMeasure> = Vec::new();
    for (p, _) in analysis.policy_names.iter().enumerate() {
        let per_scenario: Vec<RiskMeasure> = analysis
            .separate
            .iter()
            .map(|row| integrated_equal(&row[p]))
            .collect();
        let f = forecast(&per_scenario, &uniform_mix(per_scenario.len()));
        assert!((0.0..=1.0).contains(&f.performance));
        assert!(f.volatility >= 0.0);
        integrated.push(f);
    }

    // The Pareto front is non-empty and contains the best performer.
    let front = pareto_front(&integrated);
    assert!(!front.is_empty());
    let best = integrated
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.performance.total_cmp(&b.1.performance))
        .unwrap()
        .0;
    assert!(front.contains(&best), "top performer must be on the front");

    // Weight sensitivity runs over the measured data without panicking and
    // covers the whole weight range.
    let policies: Vec<(String, Vec<RiskMeasure>)> = analysis
        .policy_names
        .iter()
        .enumerate()
        .map(|(p, name)| {
            let ms: Vec<RiskMeasure> = (0..4)
                .map(|oi| {
                    let pts: Vec<RiskMeasure> =
                        analysis.separate.iter().map(|row| row[p][oi]).collect();
                    forecast(&pts, &uniform_mix(pts.len()))
                })
                .collect();
            (name.clone(), ms)
        })
        .collect();
    let s = weight_sensitivity(&policies, 3, 11);
    assert_eq!(s.points.len(), 11);
    assert_eq!(s.points[0].weight, 0.0);
    assert_eq!(s.points[10].weight, 1.0);
}

#[test]
fn ablations_run_and_support_paper_claims() {
    let base = SdscSp2Model {
        jobs: 200,
        ..Default::default()
    }
    .generate(42);
    let studies = ablation::run_all(&base, 42, 128);
    assert_eq!(studies.len(), 8);
    for study in &studies {
        assert!(!study.rows.is_empty(), "{}", study.title);
        let text = study.render();
        assert!(text.contains(&study.title));
    }
    // The escalation ablation: switching the cascade off cannot reduce the
    // Libra family's reliability.
    let esc = &studies[2];
    let rel = |label: &str| {
        esc.rows
            .iter()
            .find(|r| r.label.contains(label))
            .unwrap()
            .metrics
            .reliability_pct()
    };
    assert!(rel("Libra (escalation off)") >= rel("Libra (escalation on)") - 1.0);
}

#[test]
fn diurnal_workload_feeds_the_simulator() {
    let base = SdscSp2Model {
        jobs: 150,
        ..Default::default()
    }
    .generate(9);
    let diurnal = apply_diurnal(&base, &DiurnalProfile::office_hours(6.0), 9);
    let jobs = apply_scenario(&diurnal, &ScenarioTransform::default(), 9);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    let res = simulate(&jobs, PolicyKind::EdfBf, &cfg);
    assert_eq!(res.metrics.submitted as usize, jobs.len());
    assert!(res.metrics.fulfilled > 0);
}

#[test]
fn timeline_reflects_policy_structure() {
    let base = SdscSp2Model {
        jobs: 200,
        ..Default::default()
    }
    .generate(5);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 5);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::BidBased,
    };

    // Libra admits at submission: the waiting series is identically zero.
    let libra = simulate(&jobs, PolicyKind::Libra, &cfg);
    let tl = Timeline::from_run(&jobs, &libra.records, cfg.nodes, 3600.0);
    assert_eq!(tl.peak_waiting(), 0, "Libra never queues accepted jobs");
    assert!(tl.mean_utilization() > 0.0);

    // FCFS-BF under load queues accepted jobs.
    let fcfs = simulate(&jobs, PolicyKind::FcfsBf, &cfg);
    let tl = Timeline::from_run(&jobs, &fcfs.records, cfg.nodes, 3600.0);
    assert!(
        tl.peak_waiting() > 0,
        "backfilling policies queue under load"
    );
}

#[test]
fn conservative_backfilling_full_pipeline() {
    let base = SdscSp2Model {
        jobs: 200,
        ..Default::default()
    }
    .generate(8);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 8);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    let cons = ccs_policies::ConservativeBf::new(cfg.econ, cfg.nodes);
    let res = simulate_with(&jobs, Box::new(cons), &cfg);
    assert_eq!(res.metrics.submitted as usize, jobs.len());
    assert!(res.metrics.fulfilled > 0, "conservative completes work");
    // Same invariants as every other policy.
    assert!(res.metrics.fulfilled <= res.metrics.accepted);
    let st = res.ledger.statement();
    assert_eq!(st.invoices as u32, res.metrics.submitted);
}

#[test]
fn car_analysis_over_simulated_runs() {
    use ccs_risk::car::{analyze, CarMetric};
    use ccs_simsvc::samples::{response_times, slowdowns};

    let base = SdscSp2Model {
        jobs: 300,
        ..Default::default()
    }
    .generate(2);
    let jobs = apply_scenario(&base, &ScenarioTransform::default(), 2);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::BidBased,
    };
    // Compare a queueing policy against the no-wait Libra family: the
    // queueing policy must show a heavier makespan tail.
    let edf = simulate(&jobs, PolicyKind::EdfBf, &cfg);
    let libra = simulate(&jobs, PolicyKind::Libra, &cfg);
    let edf_rt = response_times(&jobs, &edf.records);
    let libra_rt = response_times(&jobs, &libra.records);
    let a_edf = analyze(CarMetric::Makespan, &edf_rt);
    let a_libra = analyze(CarMetric::Makespan, &libra_rt);
    assert!(
        a_edf.car95 >= a_libra.median,
        "queueing has the longer tail"
    );
    let sd = slowdowns(&jobs, &edf.records);
    let a_sd = analyze(CarMetric::Slowdown, &sd);
    assert!(a_sd.median >= 1.0 - 1e-9);
    assert!(a_sd.car99 >= a_sd.car90);
}

#[test]
fn bootstrap_intervals_on_measured_results() {
    use ccs_risk::bootstrap::bootstrap_separate;
    use ccs_risk::normalize::normalize;
    use ccs_risk::Objective;

    let base = SdscSp2Model {
        jobs: 100,
        ..Default::default()
    }
    .generate(2);
    let cfg = RunConfig {
        nodes: 128,
        econ: EconomicModel::CommodityMarket,
    };
    // Six workload levels -> six SLA results for one policy, normalized
    // against a second policy at each point.
    let mut normalized = Vec::new();
    for factor in [0.02, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let jobs = apply_scenario(
            &base,
            &ScenarioTransform {
                arrival_delay_factor: factor,
                ..Default::default()
            },
            2,
        );
        let a = simulate(&jobs, PolicyKind::SjfBf, &cfg).metrics.sla_pct();
        let b = simulate(&jobs, PolicyKind::FcfsBf, &cfg).metrics.sla_pct();
        normalized.push(normalize(Objective::Sla, &[a, b])[0]);
    }
    let boot = bootstrap_separate(&normalized, 0.95, 500, 42);
    assert!(boot.performance.contains(boot.point.performance));
    assert!(boot.performance.lo >= 0.0 && boot.performance.hi <= 1.0);
}

#[test]
fn markdown_report_generation() {
    let cfg = ExperimentConfig::quick().with_jobs(40);
    let ev = ccs_experiments::run_evaluation(&cfg);
    let report = ccs_experiments::report_md::evaluation_report(&ev);
    assert!(report.starts_with("# Risk-analysis study report"));
    assert!(report.contains("| Rank | Policy |"));
}
