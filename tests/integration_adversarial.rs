//! Adversarial / pathological-input integration tests: the stack must
//! behave sensibly on degenerate workloads, extreme parameters, and
//! malformed external data.

use ccs_economy::EconomicModel;
use ccs_policies::PolicyKind;
use ccs_simsvc::{simulate, RunConfig};
use ccs_workload::{apply_scenario, Job, ScenarioTransform, SdscSp2Model, Urgency};

fn all_policy_econ_pairs() -> Vec<(PolicyKind, EconomicModel)> {
    let mut v: Vec<(PolicyKind, EconomicModel)> = PolicyKind::COMMODITY
        .iter()
        .map(|&k| (k, EconomicModel::CommodityMarket))
        .collect();
    v.extend(
        PolicyKind::BID_BASED
            .iter()
            .map(|&k| (k, EconomicModel::BidBased)),
    );
    v
}

fn job(id: u32, submit: f64, runtime: f64, estimate: f64, deadline: f64, procs: u32) -> Job {
    Job {
        id,
        submit,
        runtime,
        estimate,
        procs,
        urgency: Urgency::Low,
        deadline,
        budget: 1e6,
        penalty_rate: 1.0,
    }
}

#[test]
fn empty_workload() {
    for (kind, econ) in all_policy_econ_pairs() {
        let cfg = RunConfig { nodes: 8, econ };
        let res = simulate(&[], kind, &cfg);
        assert_eq!(res.metrics.submitted, 0, "{kind}");
        assert_eq!(res.metrics.sla_pct(), 0.0);
        assert_eq!(res.metrics.reliability_pct(), 100.0);
    }
}

#[test]
fn jobs_wider_than_the_cluster_are_rejected_not_stuck() {
    for (kind, econ) in all_policy_econ_pairs() {
        let cfg = RunConfig { nodes: 4, econ };
        let jobs = vec![
            job(0, 0.0, 100.0, 100.0, 1e6, 64), // impossible
            job(1, 1.0, 100.0, 100.0, 1e6, 2),  // fine
        ];
        let res = simulate(&jobs, kind, &cfg);
        assert!(!res.records[0].accepted, "{kind}: impossible job accepted");
        assert!(
            res.records[1].finished_at.is_some() || !res.records[1].accepted,
            "{kind}: feasible job must not be wedged behind the impossible one"
        );
    }
}

#[test]
fn all_jobs_arrive_at_the_same_instant() {
    let jobs: Vec<Job> = (0..40)
        .map(|i| job(i, 0.0, 50.0, 50.0, 1e5, 1 + (i % 4)))
        .collect();
    for (kind, econ) in all_policy_econ_pairs() {
        let cfg = RunConfig { nodes: 16, econ };
        let res = simulate(&jobs, kind, &cfg);
        assert_eq!(res.metrics.submitted, 40, "{kind}");
        assert_eq!(res.records.len(), 40);
    }
}

#[test]
fn zero_deadline_slack_jobs() {
    // deadline == estimate == runtime: only an instant start fulfils.
    let jobs: Vec<Job> = (0..10)
        .map(|i| job(i, i as f64 * 1000.0, 100.0, 100.0, 100.0, 4))
        .collect();
    for (kind, econ) in all_policy_econ_pairs() {
        let cfg = RunConfig { nodes: 8, econ };
        let res = simulate(&jobs, kind, &cfg);
        // No panic, and whatever was fulfilled met its deadline exactly.
        for (r, j) in res.records.iter().zip(&jobs) {
            if r.fulfilled {
                assert!(
                    r.finished_at.unwrap() <= j.submit + j.deadline + 1e-6,
                    "{kind}"
                );
            }
        }
    }
}

#[test]
fn grossly_underestimated_monsters_do_not_wedge_the_service() {
    // Jobs claim 1 s but run for 10 000 s.
    let mut jobs: Vec<Job> = (0..20)
        .map(|i| job(i, i as f64 * 100.0, 10_000.0, 1.0, 50_000.0, 4))
        .collect();
    jobs.extend((20..40).map(|i| job(i, i as f64 * 100.0, 100.0, 100.0, 10_000.0, 2)));
    jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit));
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = i as u32;
    }
    for (kind, econ) in all_policy_econ_pairs() {
        let cfg = RunConfig { nodes: 16, econ };
        let res = simulate(&jobs, kind, &cfg);
        // Every accepted job eventually completes (drain terminates).
        for r in &res.records {
            if r.accepted {
                assert!(
                    r.finished_at.is_some(),
                    "{kind}: accepted job never finished"
                );
            }
        }
    }
}

#[test]
fn single_node_cluster() {
    let jobs: Vec<Job> = (0..15)
        .map(|i| job(i, i as f64 * 10.0, 30.0, 30.0, 5000.0, 1))
        .collect();
    for (kind, econ) in all_policy_econ_pairs() {
        let cfg = RunConfig { nodes: 1, econ };
        let res = simulate(&jobs, kind, &cfg);
        assert!(res.metrics.fulfilled > 0, "{kind} on a 1-node cluster");
    }
}

#[test]
fn extreme_scenario_parameters_stay_sane() {
    let base = SdscSp2Model {
        jobs: 60,
        ..Default::default()
    }
    .generate(3);
    // Most extreme corner of Table VI: everything at its max, heaviest load.
    let mut t = ScenarioTransform {
        arrival_delay_factor: 0.02,
        inaccuracy_pct: 100.0,
        ..Default::default()
    };
    t.qos.pct_high_urgency = 100.0;
    for attr in [&mut t.qos.deadline, &mut t.qos.budget, &mut t.qos.penalty] {
        attr.bias = 10.0;
        attr.high_low_ratio = 10.0;
        attr.low_mean = 10.0;
    }
    let jobs = apply_scenario(&base, &t, 3);
    for (kind, econ) in all_policy_econ_pairs() {
        let cfg = RunConfig { nodes: 128, econ };
        let [wait, sla, rel, prof] = simulate(&jobs, kind, &cfg).metrics.objectives();
        assert!(wait >= 0.0 && wait.is_finite(), "{kind}");
        assert!((0.0..=100.0).contains(&sla), "{kind}: sla {sla}");
        assert!((0.0..=100.0).contains(&rel), "{kind}: rel {rel}");
        assert!((0.0..=100.0 + 1e-9).contains(&prof), "{kind}: prof {prof}");
    }
}

#[test]
fn malformed_swf_is_rejected_cleanly() {
    for bad in [
        "1 2 3",                                     // too few fields
        "a b c d e f g h i j k l m n o p q r",       // non-numeric
        "1 0 0 100 4 -1 -1 4 120 -1 1 1 1 1 1 1 -1", // 17 fields
    ] {
        assert!(ccs_workload::swf::parse(bad).is_err(), "{bad:?} must fail");
    }
    // Comments, blanks, and CRLF text survive.
    let ok = "; header\r\n\r\n1 0 0 100 4 -1 -1 4 120 -1 1 1 1 1 1 1 -1 -1\r\n";
    assert_eq!(ccs_workload::swf::parse(ok).unwrap().len(), 1);
}

#[test]
fn risk_math_rejects_garbage_loudly() {
    use std::panic::catch_unwind;
    assert!(
        catch_unwind(|| ccs_risk::separate(&[2.0])).is_err(),
        "unnormalized input"
    );
    assert!(
        catch_unwind(|| ccs_risk::separate(&[])).is_err(),
        "empty input"
    );
    assert!(
        catch_unwind(|| ccs_risk::integrated(&[(ccs_risk::RiskMeasure::IDEAL, 0.4)])).is_err(),
        "weights not summing to 1"
    );
    assert!(
        catch_unwind(|| ccs_risk::apriori::forecast(&[ccs_risk::RiskMeasure::IDEAL], &[0.7]))
            .is_err(),
        "probabilities not summing to 1"
    );
}
