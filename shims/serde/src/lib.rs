//! In-tree shim of the `serde` facade for a fully offline build environment.
//!
//! Real serde serializes through a visitor-based data model; this shim goes
//! through an owned tree ([`Value`]) instead, which is dramatically simpler
//! and entirely sufficient for the workspace's needs (JSON export/import of
//! plain structs and enums, no zero-copy, no custom attributes). The derive
//! macros live in the sibling `serde_derive` shim and generate
//! `to_value`/`from_value` implementations against this crate.
//!
//! Supported shapes: every integer/float/bool/String primitive, `Option`,
//! `Vec`, fixed-size arrays, tuples up to arity 8, string-keyed maps, unit
//! structs, named-field structs, tuple structs, and externally-tagged enums
//! with unit/tuple/struct variants — the exact surface the workspace derives.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type lowers into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// A string-keyed map preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Error for a value of the wrong shape.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }

    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches a struct field from a map value, with a helpful error when the
/// field is missing. Used by generated `Deserialize` impls.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                match i64::try_from(n) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(n),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::Int(n) => u64::try_from(n)
                        .map_err(|_| Error::custom("negative integer for unsigned field"))?,
                    Value::UInt(n) => n,
                    Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => f as u64,
                    ref other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    ref other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| Error::custom("array length mismatch"))
            }
            other => Err(Error::expected("fixed-length sequence", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output regardless of hasher state.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}
