//! In-tree shim of `serde_json` for a fully offline build environment.
//!
//! Provides the exact surface this workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, `to_value`/`from_value`, and an `Error`
//! type — all over the serde shim's tree data model. The emitted JSON is
//! deterministic (map insertion order preserved; `HashMap`s are sorted by
//! the serde shim before they reach the writer).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Error raised by JSON parsing or by value conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Lowers any serializable value into the tree data model.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a deserializable type from a tree value.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses a JSON document into the tree data model.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_composite(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d);
            })
        }
        Value::Map(entries) => {
            write_composite(out, indent, depth, entries.len(), '{', '}', |out, i, d| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, d);
            })
        }
    }
}

fn write_composite(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json writes null for them too.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep floats recognizable as floats so round-trips stay typed.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser — recursive descent over bytes
// ---------------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(b, pos, "null", Value::Null),
        Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(Error::new(format!(
            "unexpected character `{}` at byte {}",
            *c as char, *pos
        ))),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!(
            "invalid literal at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Seq(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Map(entries));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(Error::new(format!("expected object key at byte {}", *pos)));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(Error::new(format!("expected `:` at byte {}", *pos)));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        entries.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                return Err(Error::new("unpaired surrogate escape"));
                            }
                        } else {
                            hi as u32
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 encoded char.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: usize) -> Result<u16, Error> {
    if pos + 4 > b.len() {
        return Err(Error::new("truncated \\u escape"));
    }
    let s = std::str::from_utf8(&b[pos..pos + 4]).map_err(|_| Error::new("bad \\u escape"))?;
    u16::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit()) {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number slice");
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("b".into(), Value::Str("x\"y\n".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::UInt(u64::MAX)),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed = parse_value_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_str("1 2").is_err());
        assert!(parse_value_str("{\"a\":}").is_err());
    }
}
