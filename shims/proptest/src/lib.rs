//! In-tree shim of `proptest` for a fully offline build environment.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, numeric range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! `any::<T>()`, `Just`, and `Strategy::prop_map`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the case's seed in the
//!   test name context; inputs are reproducible because generation is fully
//!   deterministic (seeded from the test's module path and case index).
//! - **No persistence.** `proptest-regressions` files are ignored.
//! - The default case count is 64 (not 256) to keep `cargo test` fast.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test-case RNG (splitmix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (property, case-index) pair. Seeding depends only on the
    /// property's name and the case number, so failures are reproducible.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: splitmix64(h ^ ((case as u64) << 32 | 0x9E37_79B9)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64_mix(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix64(seed: u64) -> u64 {
    splitmix64_mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Numeric ranges
// ---------------------------------------------------------------------------

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                (*self.start() as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}

float_strategies!(f32, f64);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values with a wide dynamic range (no NaN/inf — the tests
        // in this workspace expect arithmetic-safe inputs).
        let exp = (rng.next_u64() % 120) as i32 - 60;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy over a type's whole domain; built by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
}

// ---------------------------------------------------------------------------
// Collections and sub-modules (the `prop::` paths tests import)
// ---------------------------------------------------------------------------

/// Length specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategy producing `Vec`s of an element strategy; see [`prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + (rng.next_u64() as usize) % span;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Namespace mirror of proptest's `prop` module paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Vectors of `element` with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use std::marker::PhantomData;

        /// Either boolean with equal probability.
        pub const ANY: crate::Any<bool> = crate::Any(PhantomData);
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn mapped(n in (1u32..4).prop_map(|x| x * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 2);
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
