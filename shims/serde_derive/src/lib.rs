//! In-tree shim of serde's derive macros.
//!
//! Parses the deriving item directly from the `proc_macro` token stream (no
//! `syn`/`quote` — the build environment is offline) and generates
//! `serde::Serialize` / `serde::Deserialize` impls against the serde shim's
//! tree data model:
//!
//! - named-field structs  -> externally keyed maps
//! - tuple structs        -> newtype passthrough (arity 1) or sequences
//! - unit structs         -> null
//! - enums                -> externally tagged: unit variants as strings,
//!   data variants as single-entry maps (serde's default representation)
//!
//! Generics, lifetimes, and `#[serde(...)]` attributes are intentionally
//! unsupported; the workspace derives only plain concrete types.

// The generated-code strings deliberately embed newlines so the emitted
// impls stay readable when debugging macro output.
#![allow(clippy::write_with_newline)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Shape of a struct body or an enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (deriving `{name}`)");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub`/`pub(...)` marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

/// Advances past one type, stopping after the `,` separator (or at end).
/// Tracks `<`/`>` nesting so commas inside generic arguments don't split.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip any explicit discriminant (`= expr`) up to the variant comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => named_fields_to_map(fs, "self."),
            };
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        let _ = write!(
                            arms,
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), {inner})]),\n",
                            binds.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let inner = named_fields_to_map(fs, "");
                        let _ = write!(
                            arms,
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), {inner})]),\n",
                            fs.join(", ")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            );
        }
    }
    out
}

/// Builds a `Value::Map` expression from named fields. `prefix` is either
/// `"self."` (struct impls) or `""` (bound variant fields).
fn named_fields_to_map(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&{prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match __v {{ ::serde::Value::Null => Ok({name}), \
                     other => Err(::serde::Error::expected(\"null for unit struct {name}\", other)) }}"
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __v {{ ::serde::Value::Seq(__items) if __items.len() == {n} => \
                         Ok({name}({})), \
                         other => Err(::serde::Error::expected(\"sequence of length {n}\", other)) }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "match __v {{ ::serde::Value::Map(__m) => Ok({name} {{ {} }}), \
                         other => Err(::serde::Error::expected(\"map for struct {name}\", other)) }}",
                        inits.join(", ")
                    )
                }
            };
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            // Unit variants arrive as strings.
            let mut str_arms = String::new();
            for (v, fields) in variants {
                if matches!(fields, Fields::Unit) {
                    let _ = write!(str_arms, "\"{v}\" => Ok({name}::{v}),\n");
                }
            }
            // Data variants arrive as single-entry maps.
            let mut map_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => {
                        let _ = write!(
                            map_arms,
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        let _ = write!(
                            map_arms,
                            "\"{v}\" => match __inner {{ \
                               ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                 Ok({name}::{v}({})), \
                               other => Err(::serde::Error::expected(\"sequence of length {n} for variant {v}\", other)) }},\n",
                            items.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(__fm, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            map_arms,
                            "\"{v}\" => match __inner {{ \
                               ::serde::Value::Map(__fm) => Ok({name}::{v} {{ {} }}), \
                               other => Err(::serde::Error::expected(\"map for variant {v}\", other)) }},\n",
                            inits.join(", ")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {str_arms}\n\
                                 other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {map_arms}\n\
                                     other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::expected(\"string or single-entry map for enum {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            );
        }
    }
    out
}
